package baseline

import (
	"fmt"

	"ttdiag/internal/core"
)

// AlphaCount is the count-and-threshold mechanism of Bondavalli et al.
// ("Threshold-Based Mechanisms to Discriminate Transient from Intermittent
// Faults"): a per-node score α is incremented by one on every faulty round
// and decayed multiplicatively on every fault-free round; the node is
// isolated when α exceeds the threshold. It consumes the same consistent
// health vectors as the penalty/reward algorithm, so the two filtering
// policies can be compared head-to-head on identical diagnosis streams.
type AlphaCount struct {
	n         int
	decay     float64
	threshold float64
	scores    []float64
	active    []bool
}

// NewAlphaCount builds the filter for n nodes. decay must lie in [0, 1]
// (1 never forgets, 0 forgets immediately); threshold must be positive.
func NewAlphaCount(n int, decay, threshold float64) (*AlphaCount, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: alpha-count needs n >= 1, got %d", n)
	}
	if decay < 0 || decay > 1 {
		return nil, fmt.Errorf("baseline: alpha-count decay %v out of [0,1]", decay)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("baseline: alpha-count threshold %v must be positive", threshold)
	}
	a := &AlphaCount{
		n:         n,
		decay:     decay,
		threshold: threshold,
		scores:    make([]float64, n+1),
		active:    make([]bool, n+1),
	}
	for j := 1; j <= n; j++ {
		a.active[j] = true
	}
	return a, nil
}

// Update applies one consistent health vector and returns the nodes newly
// isolated in this round.
func (a *AlphaCount) Update(consHV core.Syndrome) ([]int, error) {
	if consHV.N() != a.n {
		return nil, fmt.Errorf("baseline: health vector covers %d nodes, want %d", consHV.N(), a.n)
	}
	var isolated []int
	for j := 1; j <= a.n; j++ {
		if !a.active[j] {
			continue
		}
		if consHV[j] == core.Faulty {
			a.scores[j]++
			if a.scores[j] > a.threshold {
				a.active[j] = false
				isolated = append(isolated, j)
			}
			continue
		}
		a.scores[j] *= a.decay
	}
	return isolated, nil
}

// Score returns node j's current α value.
func (a *AlphaCount) Score(j int) float64 {
	if j < 1 || j > a.n {
		return 0
	}
	return a.scores[j]
}

// IsActive reports whether node j is still active.
func (a *AlphaCount) IsActive(j int) bool {
	if j < 1 || j > a.n {
		return false
	}
	return a.active[j]
}

// ImmediatePolicy returns a penalty/reward configuration implementing the
// immediate-isolation baseline: a node is isolated on its first consistently
// diagnosed fault (P = 0). Sec. 9 argues that under abnormal transient
// scenarios this policy isolates every node in the system and forces a full
// restart.
func ImmediatePolicy() core.PRConfig {
	return core.PRConfig{PenaltyThreshold: 0, RewardThreshold: 1}
}
