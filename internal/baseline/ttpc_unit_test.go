package baseline

import (
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/tdma"
)

// ttpcHarness drives one TTPCNode's observer side by hand: it owns the
// node's controller and plays deliveries into it.
type ttpcHarness struct {
	t    *testing.T
	node *TTPCNode
	ctrl *tdma.Controller
}

func newTTPCHarness(t *testing.T, id int) *ttpcHarness {
	t.Helper()
	node, err := NewTTPCNode(4, id)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := tdma.NewController(tdma.NodeID(id), 4)
	if err != nil {
		t.Fatal(err)
	}
	return &ttpcHarness{t: t, node: node, ctrl: ctrl}
}

// stage runs the node's pre-slot job and returns the staged C-state frame.
func (h *ttpcHarness) stage(round int) []byte {
	h.t.Helper()
	payload, err := h.node.Run(round, h.ctrl)
	if err != nil {
		h.t.Fatal(err)
	}
	return payload
}

// deliver plays a frame from sender into the node's controller and judges it.
func (h *ttpcHarness) deliver(round, slot int, payload []byte, valid bool) {
	h.t.Helper()
	h.ctrl.ApplyDelivery(tdma.NodeID(slot), tdma.Delivery{Valid: valid, Payload: payload})
	if err := h.node.OnSlotComplete(round, slot, h.ctrl); err != nil {
		h.t.Fatal(err)
	}
}

// fullVector is the C-state of a node that still sees everyone.
func fullVector(t *testing.T) []byte {
	t.Helper()
	s := core.NewSyndrome(4, core.Healthy)
	return s.Encode()
}

func TestTTPCAcceptsMatchingCState(t *testing.T) {
	h := newTTPCHarness(t, 1)
	h.stage(0)
	for slot := 2; slot <= 4; slot++ {
		h.deliver(0, slot, fullVector(t), true)
	}
	if !h.node.Alive() || h.node.MemberCount() != 4 {
		t.Fatalf("state after clean round: alive=%v members=%d", h.node.Alive(), h.node.MemberCount())
	}
	// Next round's clique-avoidance check passes (3 agreed, 0 failed).
	if got := h.stage(1); got == nil || len(got) == 0 {
		t.Fatal("node stopped staging frames after a clean round")
	}
}

func TestTTPCDropsInvalidSender(t *testing.T) {
	h := newTTPCHarness(t, 1)
	h.stage(0)
	h.deliver(0, 2, nil, false)
	if h.node.Members()[2] {
		t.Fatal("invalid sender kept in membership")
	}
	// Unknown/undecodable frames count as failed too.
	h.deliver(0, 3, []byte{1, 2, 3}, true)
	if h.node.Members()[3] {
		t.Fatal("undecodable frame accepted")
	}
}

func TestTTPCDropsMismatchedCState(t *testing.T) {
	h := newTTPCHarness(t, 1)
	h.stage(0)
	// Node 2 claims a different membership (without node 4): implicit
	// acknowledgment fails.
	divergent := core.NewSyndrome(4, core.Healthy)
	divergent[4] = core.Faulty
	h.deliver(0, 2, divergent.Encode(), true)
	if h.node.Members()[2] {
		t.Fatal("mismatched C-state accepted")
	}
}

func TestTTPCCliqueAvoidanceSelfKill(t *testing.T) {
	h := newTTPCHarness(t, 1)
	h.stage(0)
	// Two failed judgements vs one agreed: failed >= agreed at the next
	// sending slot -> the node fails silent.
	h.deliver(0, 2, nil, false)
	h.deliver(0, 3, nil, false)
	h.deliver(0, 4, fullVector(t), true)
	payload := h.stage(1)
	if h.node.Alive() {
		t.Fatal("node survived clique avoidance with failed >= agreed")
	}
	// A fail-silent node stages an empty (locally detectable) frame.
	if len(payload) != 0 {
		t.Fatalf("dead node staged %v", payload)
	}
	// Dead nodes ignore further traffic without crashing.
	h.deliver(1, 2, fullVector(t), true)
	if h.node.Alive() {
		t.Fatal("dead node resurrected")
	}
}

func TestTTPCSenderSelfCheckOnCollision(t *testing.T) {
	h := newTTPCHarness(t, 2)
	h.stage(0)
	// The node's own slot collides: the sender concludes it is faulty.
	h.ctrl.RecordCollision(0, true)
	if err := h.node.OnSlotComplete(0, 2, h.ctrl); err != nil {
		t.Fatal(err)
	}
	if h.node.Alive() {
		t.Fatal("sender survived its own collision")
	}
	if h.node.Members()[2] {
		t.Fatal("dead sender still in its own membership")
	}
}

func TestTTPCIgnoresNonMembers(t *testing.T) {
	h := newTTPCHarness(t, 1)
	h.stage(0)
	h.deliver(0, 2, nil, false) // drop node 2
	// Further frames from node 2 are ignored (no counter churn, no panic).
	h.deliver(1, 2, fullVector(t), true)
	if h.node.Members()[2] {
		t.Fatal("non-member re-admitted implicitly")
	}
}
