package baseline

import (
	"testing"

	"ttdiag/internal/core"
)

func TestNewTTPCNodeValidation(t *testing.T) {
	if _, err := NewTTPCNode(1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewTTPCNode(4, 0); err == nil {
		t.Error("id=0 accepted")
	}
	if _, err := NewTTPCNode(4, 5); err == nil {
		t.Error("id beyond n accepted")
	}
	n, err := NewTTPCNode(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Alive() || n.MemberCount() != 4 {
		t.Fatalf("initial state: alive=%v members=%d", n.Alive(), n.MemberCount())
	}
}

func TestTTPCMembersIsACopy(t *testing.T) {
	n, err := NewTTPCNode(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := n.Members()
	m[2] = false
	if !n.Members()[2] {
		t.Fatal("Members leaked internal storage")
	}
}

func TestNewAlphaCountValidation(t *testing.T) {
	for _, tt := range []struct {
		name             string
		n                int
		decay, threshold float64
		wantErr          bool
	}{
		{name: "ok", n: 4, decay: 0.9, threshold: 3},
		{name: "bad_n", n: 0, decay: 0.9, threshold: 3, wantErr: true},
		{name: "bad_decay_low", n: 4, decay: -0.1, threshold: 3, wantErr: true},
		{name: "bad_decay_high", n: 4, decay: 1.1, threshold: 3, wantErr: true},
		{name: "bad_threshold", n: 4, decay: 0.9, threshold: 0, wantErr: true},
	} {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewAlphaCount(tt.n, tt.decay, tt.threshold)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func alphaHV(n int, faulty ...int) core.Syndrome {
	s := core.NewSyndrome(n, core.Healthy)
	for _, f := range faulty {
		s[f] = core.Faulty
	}
	return s
}

func TestAlphaCountAccumulatesAndIsolates(t *testing.T) {
	a, err := NewAlphaCount(4, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		iso, err := a.Update(alphaHV(4, 2))
		if err != nil {
			t.Fatal(err)
		}
		if len(iso) != 0 {
			t.Fatalf("early isolation at step %d", i)
		}
	}
	iso, err := a.Update(alphaHV(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(iso) != 1 || iso[0] != 2 {
		t.Fatalf("isolated = %v, want [2]", iso)
	}
	if a.IsActive(2) {
		t.Fatal("node 2 still active")
	}
}

func TestAlphaCountDecay(t *testing.T) {
	a, err := NewAlphaCount(4, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Update(alphaHV(4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Update(alphaHV(4, 1)); err != nil {
		t.Fatal(err)
	}
	if got := a.Score(1); got != 2 {
		t.Fatalf("score = %v, want 2", got)
	}
	if _, err := a.Update(alphaHV(4)); err != nil {
		t.Fatal(err)
	}
	if got := a.Score(1); got != 1 {
		t.Fatalf("score after decay = %v, want 1", got)
	}
	// Unlike the reward counter, the α score decays gradually rather than
	// resetting after R clean rounds.
	for i := 0; i < 10; i++ {
		if _, err := a.Update(alphaHV(4)); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Score(1); got <= 0 || got >= 0.01 {
		t.Fatalf("score after long decay = %v", got)
	}
}

func TestAlphaCountSizeMismatch(t *testing.T) {
	a, err := NewAlphaCount(4, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Update(alphaHV(5)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestAlphaCountAccessorsOutOfRange(t *testing.T) {
	a, err := NewAlphaCount(4, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score(0) != 0 || a.Score(5) != 0 {
		t.Error("out-of-range score non-zero")
	}
	if a.IsActive(0) || a.IsActive(5) {
		t.Error("out-of-range node active")
	}
}

func TestImmediatePolicy(t *testing.T) {
	cfg := ImmediatePolicy()
	pr, err := core.NewPenaltyReward(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	iso, _, err := pr.Update(alphaHV(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(iso) != 1 || iso[0] != 3 {
		t.Fatalf("immediate policy isolated %v on first fault, want [3]", iso)
	}
}
