// Package recovery closes the FDIR loop the paper's diagnosis feeds ("the
// key purpose of a diagnostic protocol is to trigger correct and timely
// recovery/maintenance actions", Sec. 1): a static reconfiguration plan maps
// the agreed activity vector to an operating mode — which application jobs
// run where, possibly degraded — and a per-node manager switches modes as
// isolation and reintegration decisions arrive.
//
// Because every obedient node computes identical activity vectors in
// identical rounds (Alg. 1), all managers switch to the same mode in the
// same round without any extra agreement protocol: the consistency of the
// diagnosis is exactly what makes static TT reconfiguration tables safe.
package recovery

import (
	"fmt"
	"sort"
	"strings"
)

// Job is an application function with a criticality class.
type Job struct {
	// Name identifies the job.
	Name string
	// Criticality is the job's s_i level (higher = more critical).
	Criticality int64
	// Hosts lists the nodes able to run the job, in preference order; the
	// first active host wins.
	Hosts []int
	// Degradable marks jobs that may be shed entirely when no host is
	// active (non-safety-relevant functions); a non-degradable job with no
	// active host puts the mode in the Unsafe state.
	Degradable bool
}

// Assignment maps each job to the node running it (0 = shed).
type Assignment map[string]int

// Mode is one operating mode of the reconfiguration plan.
type Mode struct {
	// Active is the activity vector the mode corresponds to (1-based).
	Active []bool
	// Jobs is the job-to-host assignment in this mode.
	Jobs Assignment
	// Unsafe reports that a non-degradable job has no active host: the
	// system must transition to its safe state (e.g. mechanical fallback).
	Unsafe bool
}

// Plan is the static reconfiguration table: jobs plus the rule deriving the
// mode for an activity vector. Plans are computed at design time in real
// deployments; here the derivation is executed on demand and memoised.
type Plan struct {
	n    int
	jobs []Job
	memo map[string]Mode
}

// NewPlan validates the job table for an n-node system.
func NewPlan(n int, jobs []Job) (*Plan, error) {
	if n < 2 {
		return nil, fmt.Errorf("recovery: need at least 2 nodes, got %d", n)
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Name == "" {
			return nil, fmt.Errorf("recovery: job with empty name")
		}
		if seen[j.Name] {
			return nil, fmt.Errorf("recovery: duplicate job %q", j.Name)
		}
		seen[j.Name] = true
		if len(j.Hosts) == 0 {
			return nil, fmt.Errorf("recovery: job %q has no hosts", j.Name)
		}
		for _, h := range j.Hosts {
			if h < 1 || h > n {
				return nil, fmt.Errorf("recovery: job %q host %d out of range 1..%d", j.Name, h, n)
			}
		}
		if j.Criticality < 1 {
			return nil, fmt.Errorf("recovery: job %q criticality %d must be >= 1", j.Name, j.Criticality)
		}
	}
	return &Plan{n: n, jobs: append([]Job(nil), jobs...), memo: make(map[string]Mode)}, nil
}

// Jobs returns the job table.
func (p *Plan) Jobs() []Job { return append([]Job(nil), p.jobs...) }

// ModeFor derives the operating mode for an activity vector (1-based, as
// produced by the protocol). The derivation is deterministic, so identical
// activity vectors — which Alg. 1 guarantees across obedient nodes — yield
// identical modes everywhere.
func (p *Plan) ModeFor(active []bool) (Mode, error) {
	if len(active) != p.n+1 {
		return Mode{}, fmt.Errorf("recovery: activity vector covers %d nodes, want %d", len(active)-1, p.n)
	}
	key := activityKey(active)
	if m, ok := p.memo[key]; ok {
		return m, nil
	}
	mode := Mode{
		Active: append([]bool(nil), active...),
		Jobs:   make(Assignment, len(p.jobs)),
	}
	for _, j := range p.jobs {
		host := 0
		for _, h := range j.Hosts {
			if active[h] {
				host = h
				break
			}
		}
		mode.Jobs[j.Name] = host
		if host == 0 && !j.Degradable {
			mode.Unsafe = true
		}
	}
	p.memo[key] = mode
	return mode, nil
}

// Manager tracks the operating mode of one node as activity vectors arrive.
type Manager struct {
	plan *Plan
	mode Mode
	key  string
	// switches counts mode changes (excluding initialisation).
	switches int
	init     bool
}

// NewManager builds a manager over the plan.
func NewManager(plan *Plan) *Manager {
	return &Manager{plan: plan}
}

// Observe feeds one activity vector; it returns true when the operating
// mode changed (including the initial mode installation; only subsequent
// changes count as Switches).
func (m *Manager) Observe(active []bool) (changed bool, err error) {
	key := activityKey(active)
	if m.init && key == m.key {
		return false, nil
	}
	mode, err := m.plan.ModeFor(active)
	if err != nil {
		return false, err
	}
	first := !m.init
	m.mode, m.key, m.init = mode, key, true
	if !first {
		m.switches++
	}
	return true, nil
}

// Mode returns the current operating mode.
func (m *Manager) Mode() Mode { return m.mode }

// Switches returns how many mode changes happened after initialisation.
func (m *Manager) Switches() int { return m.switches }

// HostOf returns the node currently running the job (0 = shed/unknown).
func (m *Manager) HostOf(job string) int {
	if m.mode.Jobs == nil {
		return 0
	}
	return m.mode.Jobs[job]
}

// Describe renders the current assignment compactly, jobs sorted by name.
func (m *Manager) Describe() string {
	if m.mode.Jobs == nil {
		return "(uninitialised)"
	}
	names := make([]string, 0, len(m.mode.Jobs))
	for name := range m.mode.Jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names)+1)
	for _, name := range names {
		host := m.mode.Jobs[name]
		if host == 0 {
			parts = append(parts, name+"->shed")
			continue
		}
		parts = append(parts, fmt.Sprintf("%s->n%d", name, host))
	}
	if m.mode.Unsafe {
		parts = append(parts, "UNSAFE")
	}
	return strings.Join(parts, " ")
}

func activityKey(active []bool) string {
	b := make([]byte, len(active))
	for i, a := range active {
		if a {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
