package recovery

import (
	"strings"
	"testing"
)

func xByWirePlan(t *testing.T) *Plan {
	t.Helper()
	plan, err := NewPlan(4, []Job{
		{Name: "steer", Criticality: 40, Hosts: []int{1, 3}},
		{Name: "brake", Criticality: 40, Hosts: []int{2, 4}},
		{Name: "stability", Criticality: 6, Hosts: []int{3}, Degradable: true},
		{Name: "doors", Criticality: 1, Hosts: []int{4, 3}, Degradable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func act(n int, down ...int) []bool {
	a := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		a[i] = true
	}
	for _, d := range down {
		a[d] = false
	}
	return a
}

func TestNewPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		n    int
		jobs []Job
	}{
		{name: "small_n", n: 1, jobs: []Job{{Name: "x", Criticality: 1, Hosts: []int{1}}}},
		{name: "empty_name", n: 4, jobs: []Job{{Criticality: 1, Hosts: []int{1}}}},
		{name: "dup_name", n: 4, jobs: []Job{
			{Name: "x", Criticality: 1, Hosts: []int{1}},
			{Name: "x", Criticality: 1, Hosts: []int{2}},
		}},
		{name: "no_hosts", n: 4, jobs: []Job{{Name: "x", Criticality: 1}}},
		{name: "bad_host", n: 4, jobs: []Job{{Name: "x", Criticality: 1, Hosts: []int{5}}}},
		{name: "bad_criticality", n: 4, jobs: []Job{{Name: "x", Hosts: []int{1}}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewPlan(tt.n, tt.jobs); err == nil {
				t.Fatal("invalid plan accepted")
			}
		})
	}
}

func TestModeForNominal(t *testing.T) {
	plan := xByWirePlan(t)
	mode, err := plan.ModeFor(act(4))
	if err != nil {
		t.Fatal(err)
	}
	if mode.Unsafe {
		t.Fatal("nominal mode unsafe")
	}
	want := Assignment{"steer": 1, "brake": 2, "stability": 3, "doors": 4}
	for job, host := range want {
		if mode.Jobs[job] != host {
			t.Errorf("%s on node %d, want %d", job, mode.Jobs[job], host)
		}
	}
}

func TestModeForFailover(t *testing.T) {
	plan := xByWirePlan(t)
	mode, err := plan.ModeFor(act(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if mode.Jobs["steer"] != 3 {
		t.Fatalf("steer on node %d after primary loss, want 3", mode.Jobs["steer"])
	}
	if mode.Unsafe {
		t.Fatal("failover mode unsafe")
	}
	// Losing node 3 as well sheds stability (degradable) and moves steer
	// nowhere -> unsafe.
	mode, err = plan.ModeFor(act(4, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if mode.Jobs["steer"] != 0 || !mode.Unsafe {
		t.Fatalf("mode = %+v, want steer shed and unsafe", mode)
	}
	if mode.Jobs["stability"] != 0 {
		t.Fatal("degradable job not shed")
	}
	if mode.Jobs["doors"] != 4 {
		t.Fatalf("doors on node %d, want 4", mode.Jobs["doors"])
	}
}

func TestModeForSizeMismatch(t *testing.T) {
	plan := xByWirePlan(t)
	if _, err := plan.ModeFor(make([]bool, 3)); err == nil {
		t.Fatal("short activity vector accepted")
	}
}

func TestManagerModeSwitching(t *testing.T) {
	plan := xByWirePlan(t)
	m := NewManager(plan)
	if got := m.Describe(); got != "(uninitialised)" {
		t.Fatalf("Describe = %q", got)
	}
	changed, err := m.Observe(act(4))
	if err != nil || !changed {
		t.Fatalf("initial observe: changed=%v err=%v", changed, err)
	}
	if m.Switches() != 0 {
		t.Fatalf("initialisation counted as a switch")
	}
	// Same vector: no change.
	if changed, _ := m.Observe(act(4)); changed {
		t.Fatal("no-op observation changed the mode")
	}
	// Node 1 isolated: failover.
	changed, err = m.Observe(act(4, 1))
	if err != nil || !changed {
		t.Fatalf("failover observe: changed=%v err=%v", changed, err)
	}
	if m.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", m.Switches())
	}
	if m.HostOf("steer") != 3 {
		t.Fatalf("steer host = %d", m.HostOf("steer"))
	}
	// Reintegration: back to nominal.
	if changed, _ := m.Observe(act(4)); !changed {
		t.Fatal("reintegration did not change the mode")
	}
	if m.HostOf("steer") != 1 {
		t.Fatalf("steer host after reintegration = %d", m.HostOf("steer"))
	}
	if m.HostOf("unknown") != 0 {
		t.Fatal("unknown job has a host")
	}
}

func TestManagerDescribe(t *testing.T) {
	plan := xByWirePlan(t)
	m := NewManager(plan)
	if _, err := m.Observe(act(4, 1, 3)); err != nil {
		t.Fatal(err)
	}
	s := m.Describe()
	for _, want := range []string{"steer->shed", "brake->n2", "doors->n4", "UNSAFE"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe = %q missing %q", s, want)
		}
	}
}

func TestPlanJobsCopy(t *testing.T) {
	plan := xByWirePlan(t)
	jobs := plan.Jobs()
	jobs[0].Name = "mutated"
	if plan.Jobs()[0].Name == "mutated" {
		t.Fatal("Jobs leaked internal storage")
	}
}
