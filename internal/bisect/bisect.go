// Package bisect localizes the first divergent round between two
// re-executable cluster variants — packed vs forced-scalar builds, or two
// runs whose fault processes differ in a single round — in O(log R)
// re-executed segments instead of a full side-by-side replay. It rides on
// sim.ClusterCheckpoint: the search keeps one checkpoint per side at the last
// round whose states still agreed, restores both sides there, runs to the
// probe midpoint, and compares full-cluster fingerprints (every node's
// protocol snapshot, controller interface state, and the engine's
// ground-truth record). Once the window has shrunk to one round, both sides
// are rewound a final time and that round is re-executed with the causal
// flight recorders drained, so the report carries exactly the events each
// side emitted while diverging.
//
// The caller owns the scenario: both clusters arrive freshly reset at round 0
// with their disturbances installed. Because ClusterCheckpoint deliberately
// does not capture bus disturbances, the installed fault processes must be
// stateless functions of the absolute round (fault.Crash, fault.EveryKthRound,
// fault.SlotBurst trains, ...) — a stateful disturbance would replay
// differently across probe segments and break the search invariant.
package bisect

import (
	"bytes"
	"fmt"

	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
	"ttdiag/internal/trace"
)

// Side is one re-executable variant under comparison.
type Side struct {
	// Name labels the side in error messages and reports.
	Name string
	// Cluster is the variant's lock-step cluster, freshly reset at round 0
	// with its (stateless) disturbances installed.
	Cluster *sim.DiagCluster
	// Rec, when non-nil, is the recorder wired as the cluster's causal sink
	// (ClusterConfig.Sink). The search resets it at every rewind; after a
	// divergence is localized it holds only the divergent round's events,
	// which the report copies out.
	Rec *trace.Recorder
}

// Report is the outcome of one bisection.
type Report struct {
	// Diverged reports whether the two sides' states differ anywhere within
	// the searched horizon.
	Diverged bool
	// Round is the 0-based engine round whose execution first drives the two
	// sides apart (the states agree after Round rounds and differ after
	// Round+1); -1 when the sides never diverge.
	Round int
	// Node is the lowest node ID whose protocol-or-controller state differs
	// after the divergent round, or 0 when only the engine's ground-truth
	// record differs (a disturbance that no protocol has observed yet).
	Node int
	// Probes counts the re-executed segments per side: the full-horizon
	// divergence check plus one segment per bisection step, at most
	// 1 + ceil(log2(rounds)). The final single-round replay that collects
	// the causal dump is constant work and not counted.
	Probes int
	// EventsA and EventsB are the causal events each side emitted while
	// executing the divergent round (empty unless the side has a recorder).
	EventsA, EventsB []trace.Event
}

// FirstDivergence binary-searches the first round within [0, rounds) whose
// execution drives sides a and b apart. Both clusters are left positioned
// just past the divergent round (or past the full horizon when the sides
// never diverge); rerun Reset before reusing them for anything else.
func FirstDivergence(a, b Side, rounds int) (*Report, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("bisect: need at least 1 round, got %d", rounds)
	}
	ca, cb := a.Cluster, b.Cluster
	if ca == nil || cb == nil {
		return nil, fmt.Errorf("bisect: both sides need a cluster")
	}
	if na, nb := ca.Config().N, cb.Config().N; na != nb {
		return nil, fmt.Errorf("bisect: side %q has N=%d, side %q has N=%d", a.Name, na, b.Name, nb)
	}
	if ra, rb := ca.Eng.Round(), cb.Eng.Round(); ra != 0 || rb != 0 {
		return nil, fmt.Errorf("bisect: sides must start at round 0, got %d and %d", ra, rb)
	}
	sa, err := sideState(ca)
	if err != nil {
		return nil, fmt.Errorf("bisect: side %q: %w", a.Name, err)
	}
	sb, err := sideState(cb)
	if err != nil {
		return nil, fmt.Errorf("bisect: side %q: %w", b.Name, err)
	}
	if firstDiff(sa, sb) >= 0 {
		return nil, fmt.Errorf("bisect: sides %q and %q already differ at round 0 — not variants of one scenario", a.Name, b.Name)
	}

	ckA, err := sim.NewClusterCheckpoint(ca)
	if err != nil {
		return nil, err
	}
	ckB, err := sim.NewClusterCheckpoint(cb)
	if err != nil {
		return nil, err
	}
	capture := func() error {
		if err := ckA.Capture(ca); err != nil {
			return err
		}
		return ckB.Capture(cb)
	}
	rewind := func() error {
		if err := ckA.Restore(ca); err != nil {
			return err
		}
		if err := ckB.Restore(cb); err != nil {
			return err
		}
		if a.Rec != nil {
			a.Rec.Reset()
		}
		if b.Rec != nil {
			b.Rec.Reset()
		}
		return nil
	}
	rep := &Report{}
	// agree reruns the next k rounds on both sides and compares fingerprints.
	agree := func(k int) (bool, error) {
		rep.Probes++
		if err := ca.Eng.RunRounds(k); err != nil {
			return false, fmt.Errorf("bisect: side %q: %w", a.Name, err)
		}
		if err := cb.Eng.RunRounds(k); err != nil {
			return false, fmt.Errorf("bisect: side %q: %w", b.Name, err)
		}
		if sa, err = sideState(ca); err != nil {
			return false, err
		}
		if sb, err = sideState(cb); err != nil {
			return false, err
		}
		return firstDiff(sa, sb) < 0, nil
	}

	if err := capture(); err != nil {
		return nil, err
	}
	same, err := agree(rounds)
	if err != nil {
		return nil, err
	}
	if same {
		rep.Round = -1
		return rep, nil
	}
	rep.Diverged = true

	// Invariant: the checkpoints hold both sides at round lo with equal
	// states; the states after hi rounds differ.
	lo, hi := 0, rounds
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if err := rewind(); err != nil {
			return nil, err
		}
		same, err := agree(mid - lo)
		if err != nil {
			return nil, err
		}
		if same {
			if err := capture(); err != nil {
				return nil, err
			}
			lo = mid
		} else {
			hi = mid
		}
	}
	rep.Round = lo

	// Final replay: rewind to the last agreeing boundary and execute just the
	// divergent round with the flight recorders drained, so the dump holds
	// exactly the causal events of the divergence.
	if err := rewind(); err != nil {
		return nil, err
	}
	if err := ca.Eng.RunRound(); err != nil {
		return nil, fmt.Errorf("bisect: side %q: %w", a.Name, err)
	}
	if err := cb.Eng.RunRound(); err != nil {
		return nil, fmt.Errorf("bisect: side %q: %w", b.Name, err)
	}
	if a.Rec != nil {
		rep.EventsA = append(rep.EventsA, a.Rec.Events()...)
	}
	if b.Rec != nil {
		rep.EventsB = append(rep.EventsB, b.Rec.Events()...)
	}
	if sa, err = sideState(ca); err != nil {
		return nil, err
	}
	if sb, err = sideState(cb); err != nil {
		return nil, err
	}
	if firstDiff(sa, sb) < 0 {
		// The search narrowed to one round, so its replay must diverge;
		// anything else means a side's disturbances are not round-stateless.
		return nil, fmt.Errorf("bisect: round %d replayed identically — are the disturbances stateless?", lo)
	}
	rep.Node = 0
	for id := 1; id < len(sa); id++ {
		if !bytes.Equal(sa[id], sb[id]) {
			rep.Node = id
			break
		}
	}
	return rep, nil
}

// sideState fingerprints everything a divergence can live in, index-addressed
// for attribution: entry 0 is the engine's ground-truth record, entry id is
// node id's protocol snapshot plus controller interface state.
func sideState(c *sim.DiagCluster) ([][]byte, error) {
	n := c.Config().N
	state := make([][]byte, n+1)
	var truth bytes.Buffer
	for round := 0; round < c.Eng.Round(); round++ {
		for _, cls := range c.Eng.Truth(round) {
			truth.WriteByte(byte(cls))
		}
	}
	state[0] = truth.Bytes()
	for id := 1; id <= n; id++ {
		snap, err := c.Runners[id].Protocol().Snapshot()
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", id, err)
		}
		var buf bytes.Buffer
		buf.Write(snap)
		ctrl := c.Eng.Controller(tdma.NodeID(id))
		for j := 1; j <= n; j++ {
			v, ok := ctrl.ReadValue(tdma.NodeID(j))
			buf.WriteByte(boolByte(ok))
			buf.WriteByte(boolByte(ctrl.Ignored(tdma.NodeID(j))))
			buf.Write(v)
			buf.WriteByte(0xFF)
		}
		buf.Write(ctrl.Outbox())
		state[id] = buf.Bytes()
	}
	return state, nil
}

// firstDiff returns the lowest index whose entries differ, or -1 when the two
// states are identical.
func firstDiff(a, b [][]byte) int {
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return i
		}
	}
	return -1
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
