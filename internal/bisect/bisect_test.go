package bisect

import (
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/sim"
	"ttdiag/internal/trace"
)

func bisectCluster(t *testing.T, rec *trace.Recorder, forceScalar bool) *sim.DiagCluster {
	t.Helper()
	cl, err := sim.NewReusableDiagnosticCluster(sim.ClusterConfig{
		N:           4,
		PR:          core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 3, ReintegrationThreshold: 4},
		Sink:        rec,
		ForceScalar: forceScalar,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Reset()
	// The shared fault process: node 3 bursts early, is isolated, and
	// reintegrates — identical on both sides, so the prefix agrees.
	cl.Eng.Bus().AddDisturbance(fault.EveryKthRound(3, 1, 4, 9))
	return cl
}

// TestBisectLocalizesInjectedDivergence injects a single extra slot burst
// into side B at one known round and requires the search to name exactly that
// round — in exactly 1 + log2(horizon) probes (the horizon is a power of two,
// so every split is even and the probe count is path-independent).
func TestBisectLocalizesInjectedDivergence(t *testing.T) {
	const horizon, inject = 64, 29
	var recA, recB trace.Recorder
	a := Side{Name: "base", Cluster: bisectCluster(t, &recA, false), Rec: &recA}
	b := Side{Name: "burst", Cluster: bisectCluster(t, &recB, false), Rec: &recB}
	b.Cluster.Eng.Bus().AddDisturbance(
		fault.NewTrain(fault.SlotBurst(b.Cluster.Eng.Schedule(), inject, 1, 1)))

	rep, err := FirstDivergence(a, b, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diverged || rep.Round != inject {
		t.Fatalf("divergence localized to round %d (diverged=%v), want %d", rep.Round, rep.Diverged, inject)
	}
	if want := 1 + 6; rep.Probes != want { // full-horizon check + log2(64) bisection segments
		t.Fatalf("bisection took %d probes, want %d", rep.Probes, want)
	}
	if rep.Node < 0 || rep.Node > 4 {
		t.Fatalf("divergent state attributed to %d, want 0..4", rep.Node)
	}
	// The recorders were drained before the final replay, so any dumped event
	// belongs to the divergent round itself.
	for _, e := range append(append([]trace.Event(nil), rep.EventsA...), rep.EventsB...) {
		if e.Round != inject {
			t.Fatalf("causal dump leaked an event outside round %d: %+v", inject, e)
		}
	}
}

// TestBisectPackedScalarAgree: the packed and forced-scalar representations
// of the same disturbed scenario must be reported divergence-free after a
// single full-horizon probe — the bisector doubles as an equivalence check.
func TestBisectPackedScalarAgree(t *testing.T) {
	var recA, recB trace.Recorder
	a := Side{Name: "packed", Cluster: bisectCluster(t, &recA, false), Rec: &recA}
	b := Side{Name: "scalar", Cluster: bisectCluster(t, &recB, true), Rec: &recB}
	rep, err := FirstDivergence(a, b, 48)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diverged || rep.Round != -1 {
		t.Fatalf("packed vs scalar reported divergent at round %d", rep.Round)
	}
	if rep.Probes != 1 {
		t.Fatalf("agreement needs exactly the full-horizon probe, took %d", rep.Probes)
	}
}

// TestBisectRejectsMismatchedSides covers the argument contract: an empty
// horizon and sides of different shape are errors, not searches.
func TestBisectRejectsMismatchedSides(t *testing.T) {
	a := Side{Name: "a", Cluster: bisectCluster(t, nil, false)}
	if _, err := FirstDivergence(a, a, 0); err == nil {
		t.Fatal("horizon 0 accepted")
	}
	small, err := sim.NewReusableDiagnosticCluster(sim.ClusterConfig{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	small.Reset()
	if _, err := FirstDivergence(a, Side{Name: "b", Cluster: small}, 8); err == nil {
		t.Fatal("mismatched N accepted")
	}
}
