// Package lowlat implements the system-level low-latency variant of the
// protocol sketched in Sec. 10. By constraining the internal node scheduling
// (every node's diagnostic job runs right before its own sending slot and
// analysis is executed right after every slot), the detection latency drops
// from four TDMA rounds to one round for diagnosis and two rounds for
// membership, at the price of portability.
//
// Each node keeps a rolling local syndrome: entry j is its local verdict on
// node j's most recent completed sending slot. The node broadcasts this
// syndrome in its own slot, so the opinions about slot (j, round d) are
// carried by the messages of nodes j+1..N in round d and nodes 1..j-1 in
// round d+1. Right after slot j-1 of round d+1 completes, all N-1 external
// opinions are available and the slot is diagnosed by the same hybrid
// majority vote H-maj as the add-on protocol — exactly one round after the
// diagnosed slot.
package lowlat

import (
	"fmt"
	"sort"

	"ttdiag/internal/core"
)

// accusationRounds is how many rounds an accusation stays in the outgoing
// rolling syndrome (membership mode), mirroring core's dissemination TTL.
const accusationRounds = 2

// accusationSkewRounds guards disagreement checks against entries whose
// verdicts are still accusation-driven, as in the add-on protocol.
const accusationSkewRounds = accusationRounds + 2

// Config parameterises one node of the low-latency variant.
type Config struct {
	// N is the system size; ID this node's 1-based identifier.
	N, ID int
	// Mode selects plain diagnosis or the membership extension; zero means
	// diagnostic.
	Mode core.Mode
	// PR tunes the penalty/reward algorithm applied to the verdict stream.
	PR core.PRConfig
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("lowlat: need at least 2 nodes, got %d", c.N)
	}
	if c.ID < 1 || c.ID > c.N {
		return fmt.Errorf("lowlat: node id %d out of range 1..%d", c.ID, c.N)
	}
	if c.Mode != 0 && c.Mode != core.ModeDiagnostic && c.Mode != core.ModeMembership {
		return fmt.Errorf("lowlat: unknown mode %d", c.Mode)
	}
	return c.PR.Validate(c.N)
}

// Verdict is one agreed per-slot diagnosis.
type Verdict struct {
	// Node is the diagnosed node (slot owner), Round the diagnosed round.
	Node, Round int
	// Health is the agreed verdict.
	Health core.Opinion
	// Isolated/Reintegrated report penalty/reward transitions caused by
	// this verdict.
	Isolated, Reintegrated bool
}

// SlotInput describes one completed sending slot as observed by this node's
// communication controller.
type SlotInput struct {
	// Round and Slot identify the completed transmission.
	Round, Slot int
	// Valid is the local validity bit for it.
	Valid bool
	// Payload is the decoded rolling syndrome it carried (nil when invalid
	// or undecodable).
	Payload core.Syndrome
	// Collision resolves self-diagnosis during blackouts: the verdict of
	// this node's own collision detector for its slot of a given round.
	Collision core.CollisionFn
}

// Node is the per-node state machine of the low-latency variant. Feed every
// completed slot (in global slot order) to OnSlot; stage the value returned
// by Outgoing right before the node's own slot.
type Node struct {
	cfg Config
	pr  *core.PenaltyReward

	// obs[j] is this node's local opinion on j's most recent completed slot.
	obs core.Syndrome
	// carried[m] is the rolling syndrome most recently received from m (nil
	// row = ε); carriedRound[m] is the round m sent it in.
	carried      []core.Syndrome
	carriedRound []int

	// accuse[j] > 0 forces entry j to Faulty in the outgoing syndrome for
	// that many more rounds (membership mode).
	accuse []int
	// accusedRound[j] is the round an accusation against j was last raised
	// (-1<<30 when never), driving the skew guard.
	accusedRound []int

	// membership bookkeeping (membership mode).
	excluded []bool
	view     ViewState
	history  []ViewState

	started bool
	lastInR int // round of the most recently consumed slot
	lastInS int // slot index of the most recently consumed slot
}

// ViewState is the current membership view of the low-latency variant.
type ViewState struct {
	// ID increments per change; Members ascending; FormedAtRound is the
	// round of the slot whose verdict triggered the change (-1 initially).
	ID            int
	Members       []int
	FormedAtRound int
}

// NewNode builds the state machine.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Mode == 0 {
		cfg.Mode = core.ModeDiagnostic
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pr, err := core.NewPenaltyReward(cfg.N, cfg.PR)
	if err != nil {
		return nil, err
	}
	members := make([]int, cfg.N)
	for j := 1; j <= cfg.N; j++ {
		members[j-1] = j
	}
	n := &Node{
		cfg:          cfg,
		pr:           pr,
		obs:          core.NewSyndrome(cfg.N, core.Healthy),
		carried:      make([]core.Syndrome, cfg.N+1),
		carriedRound: make([]int, cfg.N+1),
		accuse:       make([]int, cfg.N+1),
		accusedRound: make([]int, cfg.N+1),
		excluded:     make([]bool, cfg.N+1),
		view:         ViewState{Members: members, FormedAtRound: -1},
	}
	for j := range n.accusedRound {
		n.accusedRound[j] = -(1 << 30)
	}
	for j := 1; j <= cfg.N; j++ {
		n.carried[j] = core.NewSyndrome(cfg.N, core.Healthy)
		n.carriedRound[j] = -1
	}
	return n, nil
}

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// PenaltyReward exposes the Alg. 2 state.
func (n *Node) PenaltyReward() *core.PenaltyReward { return n.pr }

// View returns the current membership view (membership mode).
func (n *Node) View() ViewState {
	v := n.view
	v.Members = append([]int(nil), v.Members...)
	return v
}

// ViewHistory returns every installed view, oldest first, including the
// initial full view.
func (n *Node) ViewHistory() []ViewState {
	out := make([]ViewState, 0, len(n.history)+1)
	for _, v := range n.history {
		v.Members = append([]int(nil), v.Members...)
		out = append(out, v)
	}
	return append(out, n.View())
}

// Outgoing returns the rolling syndrome this node must broadcast in its next
// sending slot, with pending minority accusations merged in.
func (n *Node) Outgoing() core.Syndrome {
	out := n.obs.Clone()
	if n.cfg.Mode == core.ModeMembership {
		for j := 1; j <= n.cfg.N; j++ {
			if n.accuse[j] > 0 {
				out[j] = core.Faulty
			}
		}
	}
	return out
}

// TickRound decrements the accusation TTLs; call it once per round, after
// the node's own slot has been staged.
func (n *Node) TickRound() {
	for j := 1; j <= n.cfg.N; j++ {
		if n.accuse[j] > 0 {
			n.accuse[j]--
		}
	}
}

// OnSlot consumes one completed slot observation and returns the verdict
// that became decidable (the verdict for slot (Slot+1, Round-1), wrapping
// over round boundaries), or nil while the pipeline is still filling.
func (n *Node) OnSlot(in SlotInput) (*Verdict, error) {
	if in.Slot < 1 || in.Slot > n.cfg.N {
		return nil, fmt.Errorf("lowlat: slot %d out of range 1..%d", in.Slot, n.cfg.N)
	}
	if n.started {
		wantR, wantS := n.lastInR, n.lastInS+1
		if wantS > n.cfg.N {
			wantR, wantS = wantR+1, 1
		}
		if in.Round != wantR || in.Slot != wantS {
			return nil, fmt.Errorf("lowlat: slot (%d,%d) out of order, want (%d,%d)", in.Round, in.Slot, wantR, wantS)
		}
	}
	n.started = true
	n.lastInR, n.lastInS = in.Round, in.Slot

	// Record the local observation and the carried syndrome.
	if in.Valid {
		n.obs[in.Slot] = core.Healthy
		if in.Payload != nil && in.Payload.N() == n.cfg.N {
			n.carried[in.Slot] = in.Payload.Clone()
		} else {
			n.carried[in.Slot] = nil
		}
	} else {
		n.obs[in.Slot] = core.Faulty
		n.carried[in.Slot] = nil
	}
	n.carriedRound[in.Slot] = in.Round

	// The slot whose carrier set is now complete: (in.Slot+1, in.Round-1),
	// or (1, in.Round) after the last slot of a round.
	diagNode, diagRound := in.Slot+1, in.Round-1
	if in.Slot == n.cfg.N {
		diagNode, diagRound = 1, in.Round
	}
	if diagRound < 0 {
		return nil, nil
	}
	return n.decide(diagNode, diagRound, in.Collision)
}

func (n *Node) decide(j, d int, collision core.CollisionFn) (*Verdict, error) {
	votes := make([]core.Opinion, 0, n.cfg.N-1)
	rowOf := make([]int, 0, n.cfg.N-1) // carrier of each vote, for accusations
	for m := 1; m <= n.cfg.N; m++ {
		if m == j {
			continue
		}
		if m == n.cfg.ID {
			votes = append(votes, n.obs[j])
			rowOf = append(rowOf, m)
			continue
		}
		// Carrier m's latest syndrome must refer to (j, d): it does iff it
		// was sent in round d (for m > j) or d+1 (for m < j).
		wantRound := d
		if m < j {
			wantRound = d + 1
		}
		if n.carried[m] == nil || n.carriedRound[m] != wantRound {
			votes = append(votes, core.Erased)
			rowOf = append(rowOf, m)
			continue
		}
		votes = append(votes, n.carried[m][j])
		rowOf = append(rowOf, m)
	}
	health, ok := core.HMaj(votes)
	if !ok {
		// Only self-diagnosis can be undecided (the node's own observation
		// covers every other slot): fall back to the collision detector.
		health = core.Healthy
		if collision != nil && collision(d) == core.Faulty {
			health = core.Faulty
		}
	}

	v := &Verdict{Node: j, Round: d, Health: health}
	v.Isolated, v.Reintegrated = n.pr.UpdateNode(j, health)

	if n.cfg.Mode == core.ModeMembership {
		n.membershipStep(j, d, health, votes, rowOf)
	}
	return v, nil
}

// membershipStep raises minority accusations against carriers that disagreed
// with the agreed verdict and maintains the view.
func (n *Node) membershipStep(j, d int, health core.Opinion, votes []core.Opinion, rowOf []int) {
	if j == n.cfg.ID && health == core.Faulty {
		// The node sees itself convicted: remember it so that later
		// transition-round disagreements about its own entry do not make it
		// counter-accuse honest carriers.
		n.accusedRound[j] = d
	}
	guarded := d-n.accusedRound[j] <= accusationSkewRounds
	if !guarded {
		for i, m := range rowOf {
			if m == n.cfg.ID || votes[i] == core.Erased || votes[i] == health {
				continue
			}
			if n.accuse[m] == 0 {
				n.accuse[m] = accusationRounds
				n.accusedRound[m] = d
			}
		}
	}
	if health == core.Faulty && !n.excluded[j] {
		n.excluded[j] = true
		var members []int
		for m := 1; m <= n.cfg.N; m++ {
			if !n.excluded[m] {
				members = append(members, m)
			}
		}
		sort.Ints(members)
		n.history = append(n.history, n.view)
		n.view = ViewState{ID: n.view.ID + 1, Members: members, FormedAtRound: d}
	}
}
