package lowlat

import (
	"testing"

	"ttdiag/internal/core"
)

func nodeCfg(id int) Config {
	return Config{
		N: 4, ID: id,
		PR: core.PRConfig{PenaltyThreshold: 1 << 40, RewardThreshold: 1 << 40},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := nodeCfg(1).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{N: 1, ID: 1, PR: core.PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}},
		{N: 4, ID: 0, PR: core.PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}},
		{N: 4, ID: 5, PR: core.PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}},
		{N: 4, ID: 1, Mode: 77, PR: core.PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}},
		{N: 4, ID: 1, PR: core.PRConfig{PenaltyThreshold: -1, RewardThreshold: 1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// feed runs one slot observation with an all-healthy carried syndrome.
func feed(t *testing.T, n *Node, round, slot int, valid bool, payload core.Syndrome) *Verdict {
	t.Helper()
	v, err := n.OnSlot(SlotInput{Round: round, Slot: slot, Valid: valid, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func healthySyn() core.Syndrome { return core.NewSyndrome(4, core.Healthy) }

func TestVerdictPipelineTiming(t *testing.T) {
	n, err := NewNode(nodeCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	// Round 0: slots 1..4 — no verdicts for round -1, except slot 4 decides
	// (1, 0).
	for slot := 1; slot <= 3; slot++ {
		if v := feed(t, n, 0, slot, true, healthySyn()); v != nil {
			t.Fatalf("premature verdict %+v", v)
		}
	}
	v := feed(t, n, 0, 4, true, healthySyn())
	if v == nil || v.Node != 1 || v.Round != 0 {
		t.Fatalf("verdict after slot (0,4) = %+v, want node 1 round 0", v)
	}
	// Round 1 slot 1 decides (2, 0); ...; slot 3 decides (4, 0).
	for slot := 1; slot <= 3; slot++ {
		v := feed(t, n, 1, slot, true, healthySyn())
		if v == nil || v.Node != slot+1 || v.Round != 0 {
			t.Fatalf("verdict after slot (1,%d) = %+v, want node %d round 0", slot, v, slot+1)
		}
		if v.Health != core.Healthy {
			t.Fatalf("healthy slot diagnosed %v", v.Health)
		}
	}
}

func TestOneRoundLatency(t *testing.T) {
	// Every verdict (j, d) is decided N-1 slots after the diagnosed slot
	// (right after slot j-1 of round d+1, the last carrier): within one TDMA
	// round, the Sec. 10 latency claim.
	n, err := NewNode(nodeCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		for slot := 1; slot <= 4; slot++ {
			v := feed(t, n, round, slot, true, healthySyn())
			if v == nil {
				continue
			}
			decidedAt := round*4 + slot       // global slot index of decision
			diagnosedAt := v.Round*4 + v.Node // global slot index of the slot
			if lat := decidedAt - diagnosedAt; lat != 3 {
				t.Fatalf("verdict (%d,%d) decided at slot index %d: latency %d slots, want 3 (N-1)",
					v.Node, v.Round, decidedAt, lat)
			}
		}
	}
}

func TestOutOfOrderSlotRejected(t *testing.T) {
	n, err := NewNode(nodeCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, n, 0, 1, true, healthySyn())
	if _, err := n.OnSlot(SlotInput{Round: 0, Slot: 3, Valid: true}); err == nil {
		t.Fatal("skipped slot accepted")
	}
	if _, err := n.OnSlot(SlotInput{Round: 0, Slot: 9, Valid: true}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
}

func TestBenignFaultVerdict(t *testing.T) {
	n, err := NewNode(nodeCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up round 0.
	for slot := 1; slot <= 4; slot++ {
		feed(t, n, 0, slot, true, healthySyn())
	}
	// Round 1: slot 3 benign faulty (invalid everywhere).
	feed(t, n, 1, 1, true, healthySyn())
	feed(t, n, 1, 2, true, healthySyn())
	feed(t, n, 1, 3, false, nil)
	feed(t, n, 1, 4, true, healthySyn())
	// Carriers of (3,1): node 4 @1, nodes 1,2 @2; all report faulty.
	accusing := core.NewSyndrome(4, core.Healthy)
	accusing[3] = core.Faulty
	feed(t, n, 2, 1, true, accusing)
	v := feed(t, n, 2, 2, true, accusing)
	if v == nil || v.Node != 3 || v.Round != 1 {
		t.Fatalf("verdict = %+v, want (3,1)", v)
	}
	if v.Health != core.Faulty {
		t.Fatalf("benign faulty slot diagnosed %v", v.Health)
	}
	// But wait: carrier 4's round-1 syndrome was sent at slot 4 *after*
	// slot 3 failed, so it already accused; our own obs accuses too. The
	// healthy carried syndromes fed for slots 1,2 of round 2 would be
	// outvoted only if the vote is 2-2... the vote must still be Faulty
	// because our own observation and carrier 4 agree. This is asserted
	// above; here we additionally check the penalty counter moved.
	if got := n.PenaltyReward().Penalty(3); got != 1 {
		t.Fatalf("penalty(3) = %d, want 1", got)
	}
}

func TestSelfDiagnosisFallback(t *testing.T) {
	n, err := NewNode(nodeCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	for slot := 1; slot <= 4; slot++ {
		feed(t, n, 0, slot, true, healthySyn())
	}
	// Round 1: every slot invalid (blackout) — all carried rows lost.
	for slot := 1; slot <= 4; slot++ {
		feed(t, n, 1, slot, false, nil)
	}
	// Round 2 still silent. Deciding (2,1) happens after slot (2,1): the
	// verdict about ourselves has no external opinions -> collision fallback.
	collided := func(r int) core.Opinion {
		if r == 1 {
			return core.Faulty
		}
		return core.Healthy
	}
	v, err := n.OnSlot(SlotInput{Round: 2, Slot: 1, Valid: false, Collision: collided})
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Node != 2 || v.Round != 1 {
		t.Fatalf("verdict = %+v, want (2,1)", v)
	}
	if v.Health != core.Faulty {
		t.Fatalf("self-diagnosis = %v, want Faulty via collision detector", v.Health)
	}
}

func TestViewTracksExclusions(t *testing.T) {
	cfg := nodeCfg(1)
	cfg.Mode = core.ModeMembership
	cfg.PR.PenaltyThreshold = 0
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.View(); got.ID != 0 || len(got.Members) != 4 {
		t.Fatalf("initial view %+v", got)
	}
	for slot := 1; slot <= 4; slot++ {
		feed(t, n, 0, slot, true, healthySyn())
	}
	feed(t, n, 1, 1, true, healthySyn())
	feed(t, n, 1, 2, true, healthySyn())
	feed(t, n, 1, 3, false, nil)
	feed(t, n, 1, 4, true, healthySyn())
	accusing := core.NewSyndrome(4, core.Healthy)
	accusing[3] = core.Faulty
	feed(t, n, 2, 1, true, accusing)
	v := feed(t, n, 2, 2, true, accusing)
	if v == nil || v.Health != core.Faulty {
		t.Fatalf("verdict %+v", v)
	}
	view := n.View()
	if view.ID != 1 {
		t.Fatalf("view ID = %d", view.ID)
	}
	for _, m := range view.Members {
		if m == 3 {
			t.Fatal("excluded node still in view")
		}
	}
	if !v.Isolated {
		t.Fatal("P=0 verdict did not isolate")
	}
}

func TestOutgoingMergesAccusations(t *testing.T) {
	cfg := nodeCfg(1)
	cfg.Mode = core.ModeMembership
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 1; slot <= 4; slot++ {
		feed(t, n, 0, slot, true, healthySyn())
	}
	// Round 1: all valid, but carrier 4 claims node 2 faulty while the
	// verdict will be healthy -> minority accusation against 4.
	disagree := core.NewSyndrome(4, core.Healthy)
	disagree[2] = core.Faulty
	feed(t, n, 1, 1, true, healthySyn())
	feed(t, n, 1, 2, true, healthySyn())
	feed(t, n, 1, 3, true, healthySyn())
	feed(t, n, 1, 4, true, disagree)
	// Verdict (2,1) decided after slot (2,1): carriers 3,4 @1 and 1 @2.
	v := feed(t, n, 2, 1, true, healthySyn())
	if v == nil || v.Node != 2 || v.Health != core.Healthy {
		t.Fatalf("verdict %+v", v)
	}
	out := n.Outgoing()
	if out[4] != core.Faulty {
		t.Fatalf("outgoing %v does not accuse the disagreeing carrier", out)
	}
	// The accusation expires after accusationRounds ticks.
	n.TickRound()
	n.TickRound()
	if got := n.Outgoing(); got[4] != core.Healthy {
		t.Fatalf("accusation did not expire: %v", got)
	}
}

func TestOutgoingIsACopy(t *testing.T) {
	n, err := NewNode(nodeCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	out := n.Outgoing()
	out[1] = core.Faulty
	if n.Outgoing()[1] != core.Healthy {
		t.Fatal("Outgoing leaked internal state")
	}
}

func TestViewHistory(t *testing.T) {
	cfg := nodeCfg(1)
	cfg.Mode = core.ModeMembership
	cfg.PR.PenaltyThreshold = 0
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h := n.ViewHistory(); len(h) != 1 || h[0].ID != 0 {
		t.Fatalf("initial history = %+v", h)
	}
	for slot := 1; slot <= 4; slot++ {
		feed(t, n, 0, slot, true, healthySyn())
	}
	feed(t, n, 1, 1, true, healthySyn())
	feed(t, n, 1, 2, true, healthySyn())
	feed(t, n, 1, 3, false, nil)
	feed(t, n, 1, 4, true, healthySyn())
	accusing := core.NewSyndrome(4, core.Healthy)
	accusing[3] = core.Faulty
	feed(t, n, 2, 1, true, accusing)
	feed(t, n, 2, 2, true, accusing)
	h := n.ViewHistory()
	if len(h) != 2 {
		t.Fatalf("history = %+v", h)
	}
	if len(h[0].Members) != 4 || len(h[1].Members) != 3 {
		t.Fatalf("history members wrong: %+v", h)
	}
	h[0].Members[0] = 99
	if n.ViewHistory()[0].Members[0] != 1 {
		t.Fatal("ViewHistory leaked internal storage")
	}
}
