package rng

import (
	"math/rand"
	"testing"
)

var fastSeedCases = []int64{
	0, 1, -1, 42, 89482311, 1<<31 - 1, 1 << 31, -(1 << 31), 1<<63 - 1, -1 << 63,
	7, 123456789, -987654321,
}

// TestFastSourceMatchesStdlib pins the lazy source draw-for-draw against the
// stdlib source across seeds that exercise every normalisation branch, for
// enough draws to wrap the 607-word state vector several times (the wrap is
// where the lazily seeded and generated words interleave).
func TestFastSourceMatchesStdlib(t *testing.T) {
	const draws = 3 * fastLen
	for _, seed := range fastSeedCases {
		ref := rand.NewSource(seed).(rand.Source64)
		fast := newFastSource(seed)
		for k := 0; k < draws; k++ {
			want, got := ref.Uint64(), fast.Uint64()
			if got != want {
				t.Fatalf("seed %d draw %d: fast %#x, stdlib %#x", seed, k, got, want)
			}
		}
	}
}

// TestFastSourceReseed checks that reseeding mid-stream — the Pool.Stream hot
// path — matches a freshly seeded stdlib source, including reseeds taken at
// positions where the state vector is only partially materialised.
func TestFastSourceReseed(t *testing.T) {
	fast := newFastSource(1)
	for _, warm := range []int{0, 1, 17, fastLen - 1, fastLen, fastLen + 5, 2*fastLen + 3} {
		for _, seed := range fastSeedCases {
			for k := 0; k < warm; k++ {
				fast.Uint64()
			}
			fast.Seed(seed)
			ref := rand.NewSource(seed).(rand.Source64)
			for k := 0; k < 2*fastLen; k++ {
				want, got := ref.Uint64(), fast.Uint64()
				if got != want {
					t.Fatalf("seed %d after %d warm draws, draw %d: fast %#x, stdlib %#x",
						seed, warm, k, got, want)
				}
			}
		}
	}
}

// TestFastSourceRandDistributions checks the wrapped rand.Rand draw
// sequences — everything Stream exposes — against the stdlib source.
func TestFastSourceRandDistributions(t *testing.T) {
	ref := rand.New(rand.NewSource(99))
	fast := rand.New(newFastSource(99))
	for k := 0; k < 4000; k++ {
		if want, got := ref.Int63(), fast.Int63(); got != want {
			t.Fatalf("draw %d: Int63 %d != %d", k, got, want)
		}
		if want, got := ref.Intn(97), fast.Intn(97); got != want {
			t.Fatalf("draw %d: Intn %d != %d", k, got, want)
		}
		if want, got := ref.Float64(), fast.Float64(); got != want {
			t.Fatalf("draw %d: Float64 %v != %v", k, got, want)
		}
		if want, got := ref.ExpFloat64(), fast.ExpFloat64(); got != want {
			t.Fatalf("draw %d: ExpFloat64 %v != %v", k, got, want)
		}
		if want, got := ref.NormFloat64(), fast.NormFloat64(); got != want {
			t.Fatalf("draw %d: NormFloat64 %v != %v", k, got, want)
		}
	}
}

// TestStreamUsesFastSource pins that named streams (and pooled reseeds) stay
// draw-identical to the historical stdlib-sourced streams.
func TestStreamUsesFastSource(t *testing.T) {
	src := NewSource(12345)
	name := "equivalence/run-3"
	want := rand.New(rand.NewSource(int64(src.mix(name))))
	st := src.Stream(name)
	for k := 0; k < 2000; k++ {
		if w, g := want.Uint64(), st.Uint64(); g != w {
			t.Fatalf("draw %d: stream %#x, stdlib-seeded %#x", k, g, w)
		}
	}
	pool := src.NewPool()
	pool.Stream("other").Uint64()
	pool.Recycle()
	st = pool.Stream(name)
	want.Seed(int64(src.mix(name)))
	for k := 0; k < 2000; k++ {
		if w, g := want.Uint64(), st.Uint64(); g != w {
			t.Fatalf("pooled draw %d: stream %#x, stdlib-seeded %#x", k, g, w)
		}
	}
}

func BenchmarkSourceSeed(b *testing.B) {
	b.Run("fast", func(b *testing.B) {
		s := newFastSource(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Seed(int64(i))
			s.Uint64()
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		s := rand.NewSource(1).(rand.Source64)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Seed(int64(i))
			s.Uint64()
		}
	})
}
