// Package rng provides deterministic, named random-number streams for
// reproducible simulation campaigns.
//
// Every experiment in this repository takes an explicit master seed. Streams
// derived from the same master seed and the same name always produce the same
// sequence, independent of the order in which other streams are created or
// consumed. This is what makes fault-injection campaigns reproducible
// bit-for-bit while still letting independent subsystems (bus interference,
// malicious payloads, scenario phases) draw independent randomness.
package rng

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a factory for named, independent random streams sharing one
// master seed.
type Source struct {
	seed uint64
}

// NewSource returns a stream factory rooted at the given master seed.
func NewSource(seed int64) *Source {
	return &Source{seed: uint64(seed)}
}

// Stream returns the deterministic random stream identified by name.
// Calling Stream twice with the same name returns two independent streams
// positioned at the same starting point. Streams are backed by the lazily
// seeded fastSource, draw-for-draw identical to math/rand's default source.
func (s *Source) Stream(name string) *Stream {
	fs := newFastSource(int64(s.mix(name)))
	return &Stream{r: rand.New(fs), src: fs}
}

// mix derives the stream seed for a name. The hash of the name is mixed with
// the master seed so that distinct seeds produce unrelated streams even for
// equal names.
func (s *Source) mix(name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return h.Sum64() ^ (s.seed * 0x9e3779b97f4a7c15)
}

// Reseed repositions st at the starting point of the named stream derived
// from this source, reusing st's generator state. The repositioned stream is
// draw-for-draw identical to a fresh Stream(name).
func (s *Source) Reseed(st *Stream, name string) {
	st.r.Seed(int64(s.mix(name)))
}

// Pool recycles stream state across the repetitions executed by one campaign
// worker: math/rand's generator state is ~5 KB, so deriving fresh named
// streams in every repetition dominates the allocation profile of an
// otherwise allocation-free campaign. Pool.Stream is draw-for-draw identical
// to Source.Stream. A Pool must not be shared between goroutines — create
// one per campaign worker.
type Pool struct {
	src     *Source
	streams []*Stream
	next    int
}

// NewPool returns an empty stream pool backed by this source.
func (s *Source) NewPool() *Pool { return &Pool{src: s} }

// Stream returns the named stream, reusing a recycled generator state when
// one is available.
func (p *Pool) Stream(name string) *Stream {
	if p.next < len(p.streams) {
		st := p.streams[p.next]
		p.next++
		p.src.Reseed(st, name)
		return st
	}
	st := p.src.Stream(name)
	p.streams = append(p.streams, st)
	p.next++
	return st
}

// Recycle returns every stream handed out so far to the pool. Call it at the
// start of each repetition; streams obtained before the call must no longer
// be used afterwards.
func (p *Pool) Recycle() { p.next = 0 }

// Stream is a deterministic random stream with the distribution helpers the
// simulator needs. It is not safe for concurrent use; derive one stream per
// goroutine instead.
type Stream struct {
	r *rand.Rand
	// src is the same generator rand.New wraps, kept typed so Save/Restore
	// can copy the exact cursor position without reflection or encoding.
	src *fastSource
}

// NewStream returns a stand-alone stream seeded directly, for tests that do
// not need named derivation.
func NewStream(seed int64) *Stream {
	fs := newFastSource(seed)
	return &Stream{r: rand.New(fs), src: fs}
}

// StreamState is a saved generator position. It is a plain value — copying it
// copies the position — sized ~5 KB (the full lagged-Fibonacci state vector).
// The zero value is a valid target for Save.
type StreamState struct {
	src fastSource
}

// Save records st's exact generator position into dst. It is a pure value
// copy: no allocation, and dst can be reused across saves. Every draw method
// on Stream is a pure function of this state, so Restore followed by any
// sequence of draws reproduces the saved-point sequence exactly.
func (st *Stream) Save(dst *StreamState) { dst.src = *st.src }

// Restore repositions st at a previously saved position. st and the stream
// the state was saved from must share a generator shape, which all streams
// do; cross-stream restores are well-defined and used by splitting clones.
func (st *Stream) Restore(from *StreamState) { *st.src = from.src }

// Int63n returns a uniform integer in [0, n). n must be > 0.
func (st *Stream) Int63n(n int64) int64 { return st.r.Int63n(n) }

// Intn returns a uniform integer in [0, n). n must be > 0.
func (st *Stream) Intn(n int) int { return st.r.Intn(n) }

// Float64 returns a uniform float in [0, 1).
func (st *Stream) Float64() float64 { return st.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (st *Stream) Uint64() uint64 { return st.r.Uint64() }

// Bool returns true with probability p.
func (st *Stream) Bool(p float64) bool { return st.r.Float64() < p }

// Exp returns an exponentially distributed value with the given rate
// (events per unit). The mean of the returned value is 1/rate.
func (st *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return st.r.ExpFloat64() / rate
}

// Poisson returns a Poisson-distributed count with the given mean, using
// inversion by sequential search for small means and a normal approximation
// for large ones. It is used to cross-check the analytic transient-fault
// correlation model of Fig. 3.
func (st *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		// Normal approximation with continuity correction.
		v := st.r.NormFloat64()*math.Sqrt(mean) + mean + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= st.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bytes fills b with random bytes, consuming one Uint64 draw per eight bytes
// (little-endian) instead of one draw per byte. Note this makes the filled
// bytes — and the stream position afterwards — differ from the historical
// one-Intn-per-byte implementation, so seeded sequences that mix Bytes with
// other draws (e.g. malicious-syndrome payloads) changed once, at the switch.
func (st *Stream) Bytes(b []byte) {
	for len(b) >= 8 {
		binary.LittleEndian.PutUint64(b, st.r.Uint64())
		b = b[8:]
	}
	if len(b) > 0 {
		v := st.r.Uint64()
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
	}
}
