package rng

import "math/rand"

// fastSource is a rand.Source64 that is draw-for-draw identical to
// math/rand's default source (the additive lagged Fibonacci generator
// vec[feed] += vec[tap] over 607 int64 words) but seeds lazily: Seed records
// the normalised LCG start value and clears a presence bitset instead of
// running the 1841-step seeding recurrence, and each state word is
// materialised on first touch from a closed form of the seeding LCG. That
// turns Seed from ~15µs into ~10ns, which matters because campaign workers
// reseed a handful of named streams per repetition — at ~1200 repetitions per
// rendered artifact the stdlib reseed alone costs tens of milliseconds.
//
// Equivalence with the stdlib source is structural, not sampled: the seeding
// recurrence assigns vec[i] from LCG chain positions 21+3i, 22+3i, 23+3i
// XORed with a fixed per-slot constant, so vec[i] is a pure function of the
// seed computable in O(log i) multiplications (O(1) amortised along the two
// read cursors, which move sequentially). The per-slot constants are not
// copied from the stdlib source: they are recovered numerically at package
// init from the first 607 outputs of rand.NewSource(1) — every state word is
// read at a known cursor position before or as it is first overwritten, so
// the seeded vector (and with it each constant) is fully determined by those
// outputs. TestFastSourceMatchesStdlib pins the equivalence draw by draw.
type fastSource struct {
	vec  [fastLen]int64
	done [(fastLen + 63) / 64]uint64
	tap  int
	feed int
	x0   uint64 // normalised seed: LCG chain position 0

	// Per-cursor memo of the most recent lazily computed slot (stored as
	// index+1) and its first LCG value, so the sequential cursor walk costs
	// one modular multiplication per new slot instead of a full modpow.
	memoI [2]int
	memoA [2]uint64
}

// Generator parameters of math/rand's default source and of the
// multiplicative LCG (Lehmer, Park–Miller constants) used to seed it.
const (
	fastLen  = 607       // state vector length
	fastTap  = 273       // distance of the second read cursor
	lcgA     = 48271     // seeding LCG multiplier
	lcgM     = 1<<31 - 1 // seeding LCG modulus (Mersenne prime 2³¹−1)
	seedZero = 89482311  // stdlib replacement for the forbidden zero seed
)

// fastCooked[i] is the fixed XOR constant the seeding recurrence folds into
// state word i; recovered from the reference source at init.
var fastCooked [fastLen]int64

// invA3 is the modular inverse of lcgA³ mod lcgM: one multiplication by it
// steps a slot's LCG value from slot i+1 to slot i, the direction the read
// cursors walk.
var invA3 uint64

// modmul returns a·b mod 2³¹−1 for a, b < 2³¹, using the Mersenne-prime
// folding identity x ≡ (x>>31) + (x & 2³¹−1) applied twice.
func modmul(a, b uint64) uint64 {
	p := a * b
	p = (p >> 31) + (p & lcgM)
	p = (p >> 31) + (p & lcgM)
	if p >= lcgM {
		p -= lcgM
	}
	return p
}

// modpow returns base^exp mod 2³¹−1 by square-and-multiply.
func modpow(base, exp uint64) uint64 {
	result := uint64(1)
	for ; exp > 0; exp >>= 1 {
		if exp&1 != 0 {
			result = modmul(result, base)
		}
		base = modmul(base, base)
	}
	return result
}

// init recovers fastCooked from the first 607 outputs of the stdlib source
// seeded with 1. Output k (1-based) reads slots feed_k and tap_k and
// overwrites feed_k; the feed cursor visits 333..0, then 606..335, then 334,
// and the tap cursor trails it by 273 slots, so:
//
//   - k in [274,334]: the tap slot was overwritten at draw k−273 while the
//     feed slot still holds its seeded value → seeded[334−k] = out_k − out_{k−273};
//   - k in [335,606]: same shape one wrap later → seeded[941−k] = out_k − out_{k−273};
//   - k = 607: the feed slot 334 is read seeded for the first time, the tap
//     slot 0 was overwritten at draw 334 → seeded[334] = out_607 − out_334;
//   - k in [1,273]: both slots are still seeded, and slot 607−k is already
//     recovered by the cases above → seeded[334−k] = out_k − seeded[607−k].
//
// All additions wrap in two's complement, so the subtractions are exact in
// uint64. XORing out the seed-1 LCG chain then isolates the constants.
func init() {
	src := rand.NewSource(1).(rand.Source64)
	var out [fastLen + 1]uint64 // 1-based
	for k := 1; k <= fastLen; k++ {
		out[k] = src.Uint64()
	}
	var seeded [fastLen]uint64
	for k := 274; k <= 334; k++ {
		seeded[334-k] = out[k] - out[k-273]
	}
	for k := 335; k <= 606; k++ {
		seeded[941-k] = out[k] - out[k-273]
	}
	seeded[334] = out[607] - out[334]
	for k := 1; k <= 273; k++ {
		seeded[334-k] = out[k] - seeded[607-k]
	}
	a := modpow(lcgA, 21) // chain position 21 for x0 = 1
	lcgA3 := modpow(lcgA, 3)
	for i := 0; i < fastLen; i++ {
		b := modmul(lcgA, a)
		c := modmul(lcgA, b)
		fastCooked[i] = int64(seeded[i]) ^ int64(a<<40^b<<20^c)
		a = modmul(a, lcgA3)
	}
	invA3 = modpow(lcgA3, lcgM-2)
}

// newFastSource returns a fast source positioned exactly like
// rand.NewSource(seed).
func newFastSource(seed int64) *fastSource {
	s := &fastSource{}
	s.Seed(seed)
	return s
}

// Seed repositions the source exactly like the stdlib Seed, in O(1): the
// seed is normalised into the LCG domain and the lazily materialised state
// is invalidated.
func (s *fastSource) Seed(seed int64) {
	seed %= lcgM
	if seed < 0 {
		seed += lcgM
	}
	if seed == 0 {
		seed = seedZero
	}
	s.x0 = uint64(seed)
	s.tap = 0
	s.feed = fastLen - fastTap
	s.done = [(fastLen + 63) / 64]uint64{}
	s.memoI = [2]int{}
}

// ensure materialises state word i if it has not been generated or lazily
// seeded yet. cursor selects the memo lane (0 = feed, 1 = tap) so the two
// sequential cursor walks each pay one modmul per new word.
func (s *fastSource) ensure(i, cursor int) {
	w, bit := i>>6, uint(i)&63
	if s.done[w]&(1<<bit) != 0 {
		return
	}
	var a uint64
	if s.memoI[cursor] == i+2 {
		a = modmul(s.memoA[cursor], invA3)
	} else {
		a = modmul(modpow(lcgA, uint64(21+3*i)), s.x0)
	}
	s.memoI[cursor] = i + 1
	s.memoA[cursor] = a
	b := modmul(lcgA, a)
	c := modmul(lcgA, b)
	s.vec[i] = int64(a<<40^b<<20^c) ^ fastCooked[i]
	s.done[w] |= 1 << bit
}

// Uint64 implements rand.Source64, bit-identically to the stdlib source.
func (s *fastSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += fastLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += fastLen
	}
	s.ensure(s.feed, 0)
	s.ensure(s.tap, 1)
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 implements rand.Source.
func (s *fastSource) Int63() int64 {
	return int64(s.Uint64() &^ (1 << 63))
}
