package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	s1 := NewSource(42).Stream("bus")
	s2 := NewSource(42).Stream("bus")
	for i := 0; i < 1000; i++ {
		if got, want := s1.Uint64(), s2.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestStreamIndependenceByName(t *testing.T) {
	src := NewSource(42)
	a := src.Stream("bus")
	b := src.Stream("payload")
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different names produced %d identical draws out of %d", same, n)
	}
}

func TestStreamIndependenceBySeed(t *testing.T) {
	a := NewSource(1).Stream("bus")
	b := NewSource(2).Stream("bus")
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws out of %d", same, n)
	}
}

func TestExpMean(t *testing.T) {
	st := NewStream(7)
	const (
		rate = 4.0
		n    = 200000
	)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += st.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exponential mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestExpNonPositiveRate(t *testing.T) {
	st := NewStream(7)
	if v := st.Exp(0); !math.IsInf(v, 1) {
		t.Fatalf("Exp(0) = %v, want +Inf", v)
	}
	if v := st.Exp(-1); !math.IsInf(v, 1) {
		t.Fatalf("Exp(-1) = %v, want +Inf", v)
	}
}

func TestPoissonMean(t *testing.T) {
	tests := []struct {
		name string
		mean float64
	}{
		{name: "small", mean: 0.5},
		{name: "moderate", mean: 12},
		{name: "large_normal_approx", mean: 900},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st := NewStream(11)
			const n = 100000
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += float64(st.Poisson(tt.mean))
			}
			got := sum / n
			tol := 0.05 * tt.mean
			if tol < 0.02 {
				tol = 0.02
			}
			if math.Abs(got-tt.mean) > tol {
				t.Fatalf("Poisson mean = %v, want ~%v", got, tt.mean)
			}
		})
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	st := NewStream(3)
	if got := st.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := st.Poisson(-2); got != 0 {
		t.Fatalf("Poisson(-2) = %d, want 0", got)
	}
}

func TestBoolProbability(t *testing.T) {
	st := NewStream(5)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if st.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %v, want ~0.25", frac)
	}
}

func TestIntnRange(t *testing.T) {
	st := NewStream(9)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%100) + 1
		v := st.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesFills(t *testing.T) {
	st := NewStream(13)
	b := make([]byte, 256)
	st.Bytes(b)
	zero := 0
	for _, x := range b {
		if x == 0 {
			zero++
		}
	}
	if zero == len(b) {
		t.Fatal("Bytes left the whole buffer zero")
	}
}

// TestBytesDrawBudget pins the draw economy of Bytes: one Uint64 per eight
// bytes (rounded up), verified by comparing the stream position afterwards
// against a twin stream advanced by explicit Uint64 draws.
func TestBytesDrawBudget(t *testing.T) {
	for _, size := range []int{0, 1, 7, 8, 9, 16, 37} {
		st := NewStream(99)
		st.Bytes(make([]byte, size))
		twin := NewStream(99)
		for i := 0; i < (size+7)/8; i++ {
			twin.Uint64()
		}
		if got, want := st.Uint64(), twin.Uint64(); got != want {
			t.Fatalf("Bytes(%d bytes): stream advanced to %d, want %d (one draw per 8 bytes)", size, got, want)
		}
	}
}

// TestBytesMatchesUint64 pins the byte layout: little-endian packing of the
// underlying Uint64 draws, including the short tail.
func TestBytesMatchesUint64(t *testing.T) {
	st := NewStream(7)
	b := make([]byte, 11)
	st.Bytes(b)
	twin := NewStream(7)
	v1, v2 := twin.Uint64(), twin.Uint64()
	for i := 0; i < 8; i++ {
		if b[i] != byte(v1>>(8*i)) {
			t.Fatalf("byte %d = %#x, want %#x", i, b[i], byte(v1>>(8*i)))
		}
	}
	for i := 8; i < 11; i++ {
		if b[i] != byte(v2>>(8*(i-8))) {
			t.Fatalf("tail byte %d = %#x, want %#x", i, b[i], byte(v2>>(8*(i-8))))
		}
	}
}

func TestInt63nRange(t *testing.T) {
	st := NewStream(15)
	for i := 0; i < 1000; i++ {
		if v := st.Int63n(7); v < 0 || v >= 7 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

// TestStreamSaveRestore pins the checkpoint contract: Restore repositions a
// stream exactly, so any draw sequence after Restore reproduces the draws
// made after Save — including mixed draw kinds, and across intermediate
// consumption that moved the cursor arbitrarily far.
func TestStreamSaveRestore(t *testing.T) {
	src := NewSource(42)
	st := src.Stream("checkpoint/probe")
	for i := 0; i < 1234; i++ { // park the cursor mid-sequence
		st.Uint64()
	}
	var state StreamState
	st.Save(&state)
	drain := func() [6]uint64 {
		var out [6]uint64
		out[0] = st.Uint64()
		out[1] = uint64(st.Int63n(1 << 40))
		out[2] = math.Float64bits(st.Float64())
		out[3] = uint64(st.Intn(97))
		out[4] = math.Float64bits(st.Exp(2.5))
		b := make([]byte, 5)
		st.Bytes(b)
		for i, v := range b {
			out[5] |= uint64(v) << (8 * i)
		}
		return out
	}
	want := drain()
	for i := 0; i < 321; i++ { // diverge before restoring
		st.Float64()
	}
	st.Restore(&state)
	if got := drain(); got != want {
		t.Fatalf("draws after Restore = %v, want %v", got, want)
	}
}

// TestStreamRestoreCrossStream checks that a state saved from one stream can
// reposition a different stream (splitting clones restore a parent's saved
// position into a pooled stream).
func TestStreamRestoreCrossStream(t *testing.T) {
	src := NewSource(7)
	parent := src.Stream("parent")
	parent.Uint64()
	parent.Uint64()
	var state StreamState
	parent.Save(&state)
	want := [3]uint64{parent.Uint64(), parent.Uint64(), parent.Uint64()}
	clone := src.Stream("unrelated")
	clone.Restore(&state)
	got := [3]uint64{clone.Uint64(), clone.Uint64(), clone.Uint64()}
	if got != want {
		t.Fatalf("cross-stream restore draws = %v, want %v", got, want)
	}
}

// TestStreamSaveRestoreAfterPoolReseed checks Save/Restore composes with the
// pool's reseed-in-place reuse: a recycled stream restored to a saved
// position forgets the reseed entirely.
func TestStreamSaveRestoreAfterPoolReseed(t *testing.T) {
	src := NewSource(11)
	pool := src.NewPool()
	st := pool.Stream("run-0")
	st.Uint64()
	var state StreamState
	st.Save(&state)
	want := st.Uint64()
	pool.Recycle()
	st2 := pool.Stream("run-1") // same object, reseeded in place
	if st2 != st {
		t.Fatalf("pool did not recycle the stream object")
	}
	st2.Restore(&state)
	if got := st2.Uint64(); got != want {
		t.Fatalf("restored recycled stream drew %d, want %d", got, want)
	}
}
