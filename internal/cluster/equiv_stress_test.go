package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
)

// stressDisturbances derives a randomized fault schedule from the master
// seed: background noise on every transmission plus a few seeded asymmetric
// blind windows. Both runtimes get an independently constructed but
// identically seeded copy, so their buses behave identically.
func stressDisturbances(seed int64) []tdma.Disturbance {
	src := rng.NewSource(seed)
	ds := []tdma.Disturbance{fault.NewRandomNoise(0.12, src.Stream("noise"))}
	pick := src.Stream("schedule")
	for i := 0; i < 3; i++ {
		from := 5 + pick.Intn(25)
		ds = append(ds, fault.ReceiverBlind{
			Receiver:  tdma.NodeID(1 + pick.Intn(4)),
			Senders:   []tdma.NodeID{tdma.NodeID(1 + pick.Intn(4))},
			FromRound: from,
			ToRound:   from + 1 + pick.Intn(3),
		})
	}
	return ds
}

// TestSeededCrossEngineEquivalenceStress runs the same randomized fault
// schedule through the lock-step engine and the goroutine-per-node runtime
// and asserts byte-identical core.Snapshot output for every node — the full
// protocol state (alignment buffers, accusation state, penalty/reward
// counters), not just the health vectors the example-based equivalence test
// compares. Run under -race (scripts/check.sh does), this catches the data
// races the static analyzer cannot see.
func TestSeededCrossEngineEquivalenceStress(t *testing.T) {
	const rounds = 40
	cfg := Config{
		Ls: []int{2, 0, 3, 1},
		PR: core.PRConfig{
			PenaltyThreshold:       5,
			RewardThreshold:        12,
			ReintegrationThreshold: 10,
		},
	}
	for _, seed := range []int64{1, 7, 42, 1337} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := lockStepSnapshots(t, cfg, seed, rounds)
			got := concurrentSnapshots(t, cfg, seed, rounds)
			for id := 1; id <= 4; id++ {
				if !bytes.Equal(ref[id], got[id]) {
					t.Errorf("node %d: concurrent protocol state diverged from lock-step\nlock-step:  %s\nconcurrent: %s",
						id, ref[id], got[id])
				}
			}
		})
	}
}

func lockStepSnapshots(t *testing.T, cfg Config, seed int64, rounds int) [][]byte {
	t.Helper()
	eng, runners, err := sim.NewDiagnosticCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range stressDisturbances(seed) {
		eng.Bus().AddDisturbance(d)
	}
	if err := eng.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}
	snaps := make([][]byte, 5)
	for id := 1; id <= 4; id++ {
		snap, err := runners[id].Protocol().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snaps[id] = snap
	}
	return snaps
}

func concurrentSnapshots(t *testing.T, cfg Config, seed int64, rounds int) [][]byte {
	t.Helper()
	ncfg, err := Normalize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runners := make([]sim.Runner, ncfg.N+1)
	typed := make([]*sim.DiagRunner, ncfg.N+1)
	for id := 1; id <= ncfg.N; id++ {
		r, err := sim.NewDiagRunner(NodeConfig(ncfg, id))
		if err != nil {
			t.Fatal(err)
		}
		runners[id], typed[id] = r, r
	}
	cl, err := NewWithRunners(ncfg, runners, ncfg.Ls)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, d := range stressDisturbances(seed) {
		cl.AddDisturbance(d)
	}
	if err := cl.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}
	// The mailbox rendezvous of the last RunRound establishes the
	// happens-before edge that makes reading the runners safe here.
	snaps := make([][]byte, 5)
	for id := 1; id <= ncfg.N; id++ {
		snap, err := typed[id].Protocol().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snaps[id] = snap
	}
	return snaps
}
