package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/metrics"
	"ttdiag/internal/sim"
)

// TestClusterMetricsMatchLockStep runs the same randomized fault schedule
// through the lock-step engine and the goroutine-per-node runtime with
// telemetry attached to every protocol, and asserts byte-identical merged
// snapshots. Each node gets instruments from its own registry — a Registry
// is single-goroutine by contract — and the per-node registries are merged
// exactly like campaign worker registries. Run under -race (scripts/check.sh
// runs this package with it), this doubles as the proof that metrics
// emission adds no cross-goroutine state to the hot path.
func TestClusterMetricsMatchLockStep(t *testing.T) {
	const rounds = 32
	const seed = 7
	cfg := Config{
		Ls: []int{2, 0, 3, 1},
		PR: core.PRConfig{
			PenaltyThreshold:       5,
			RewardThreshold:        12,
			ReintegrationThreshold: 10,
		},
	}

	lockStep := func() []byte {
		eng, runners, err := sim.NewDiagnosticCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws := metrics.NewWorkerSet()
		for id := 1; id <= 4; id++ {
			runners[id].Protocol().SetMetrics(core.NewStepMetrics(ws.Worker()))
		}
		for _, d := range stressDisturbances(seed) {
			eng.Bus().AddDisturbance(d)
		}
		if err := eng.RunRounds(rounds); err != nil {
			t.Fatal(err)
		}
		return mergedJSON(t, ws)
	}

	concurrent := func() []byte {
		ncfg, err := Normalize(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws := metrics.NewWorkerSet()
		runners := make([]sim.Runner, ncfg.N+1)
		for id := 1; id <= ncfg.N; id++ {
			r, err := sim.NewDiagRunner(NodeConfig(ncfg, id))
			if err != nil {
				t.Fatal(err)
			}
			// Attached before the node goroutines start; each protocol
			// updates only its own registry from its own goroutine.
			r.Protocol().SetMetrics(core.NewStepMetrics(ws.Worker()))
			runners[id] = r
		}
		cl, err := NewWithRunners(ncfg, runners, ncfg.Ls)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for _, d := range stressDisturbances(seed) {
			cl.AddDisturbance(d)
		}
		if err := cl.RunRounds(rounds); err != nil {
			t.Fatal(err)
		}
		// The mailbox rendezvous of the last RunRound establishes the
		// happens-before edge that makes reading the registries safe here.
		return mergedJSON(t, ws)
	}

	ref := lockStep()
	got := concurrent()
	if !bytes.Equal(ref, got) {
		t.Fatalf("concurrent-runtime metrics diverged from lock-step\nlock-step:  %s\nconcurrent: %s", ref, got)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(ref, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["protocol/steps"] != 4*rounds {
		t.Fatalf("steps = %d, want %d", snap.Counters["protocol/steps"], 4*rounds)
	}
	if snap.Counters["vote/faulty"] == 0 || snap.Counters["pr/isolations"] == 0 {
		t.Fatalf("stress schedule under-exercised the instruments: %v", snap.Counters)
	}
}

func mergedJSON(t *testing.T, ws *metrics.WorkerSet) []byte {
	t.Helper()
	snap, err := ws.Merged()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
