package cluster

import (
	"sync"
	"testing"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/lowlat"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
	"ttdiag/internal/trace"
)

// buildDisturbances returns the identical disturbance set for both runtimes.
func scenarioDisturbances(sched *tdma.Schedule) []tdma.Disturbance {
	return []tdma.Disturbance{
		fault.NewTrain(
			fault.SlotBurst(sched, 6, 2, 2),
			fault.Blackout(sched, 12, 1),
		),
		fault.ReceiverBlind{Receiver: 1, Senders: []tdma.NodeID{3}, FromRound: 16, ToRound: 17},
	}
}

// TestEquivalenceWithLockStepEngine runs the same scenario on the lock-step
// engine and the concurrent runtime and requires bit-identical consistent
// health vectors and activity vectors in every round.
func TestEquivalenceWithLockStepEngine(t *testing.T) {
	cfgs := []Config{
		{Ls: sim.Staircase(4), AllSendCurrRound: true,
			PR: core.PRConfig{PenaltyThreshold: 6, RewardThreshold: 50}},
		{Ls: []int{2, 0, 3, 1},
			PR: core.PRConfig{PenaltyThreshold: 6, RewardThreshold: 50}},
	}
	for ci, cfg := range cfgs {
		// Lock-step reference run.
		eng, runners, err := sim.NewDiagnosticCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range scenarioDisturbances(eng.Schedule()) {
			eng.Bus().AddDisturbance(d)
		}
		const rounds = 24
		type snap struct {
			hv     string
			active string
		}
		ref := make([][]snap, rounds)
		for k := 0; k < rounds; k++ {
			if err := eng.RunRound(); err != nil {
				t.Fatal(err)
			}
			ref[k] = make([]snap, 5)
			for id := 1; id <= 4; id++ {
				out := runners[id].Last()
				s := snap{active: boolsKey(out.Active)}
				if out.ConsHV != nil {
					s.hv = out.ConsHV.String()
				}
				ref[k][id] = s
			}
		}

		// Concurrent run.
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for _, d := range scenarioDisturbances(cl.Schedule()) {
			cl.AddDisturbance(d)
		}
		for k := 0; k < rounds; k++ {
			if err := cl.RunRound(); err != nil {
				t.Fatal(err)
			}
			for id := 1; id <= 4; id++ {
				out := cl.Last(id)
				gotHV := ""
				if out.ConsHV != nil {
					gotHV = out.ConsHV.String()
				}
				if gotHV != ref[k][id].hv {
					t.Fatalf("cfg %d round %d node %d: cons_hv %q != lock-step %q",
						ci, k, id, gotHV, ref[k][id].hv)
				}
				if got := boolsKey(out.Active); got != ref[k][id].active {
					t.Fatalf("cfg %d round %d node %d: active %q != lock-step %q",
						ci, k, id, got, ref[k][id].active)
				}
			}
		}
	}
}

func boolsKey(bs []bool) string {
	out := make([]byte, 0, len(bs))
	for _, b := range bs {
		if b {
			out = append(out, '1')
		} else {
			out = append(out, '0')
		}
	}
	return string(out)
}

func TestClusterIsolatesCrashedNode(t *testing.T) {
	cl, err := New(Config{
		Ls: []int{2, 0, 3, 1},
		PR: core.PRConfig{PenaltyThreshold: 4, RewardThreshold: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.AddDisturbance(fault.Crash(3, 8))
	if err := cl.RunRounds(25); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		out := cl.Last(id)
		if out.Active[3] {
			t.Fatalf("node %d still considers the crashed node active", id)
		}
		for _, healthy := range []int{1, 2, 4} {
			if !out.Active[healthy] {
				t.Fatalf("node %d isolated healthy node %d", id, healthy)
			}
		}
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	cl, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.RunRounds(3); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close()
	if err := cl.RunRound(); err == nil {
		t.Fatal("RunRound after Close accepted")
	}
}

func TestClusterTrace(t *testing.T) {
	var rec trace.Recorder
	cl, err := New(Config{Sink: &rec})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Filter(trace.KindJobRun)); got != 8 {
		t.Fatalf("job events = %d, want 8", got)
	}
	if got := len(rec.Filter(trace.KindTransmit)); got != 8 {
		t.Fatalf("transmit events = %d, want 8", got)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(Config{N: 1}); err == nil {
		t.Fatal("1-node cluster accepted")
	}
	if _, err := New(Config{N: 4, Ls: []int{0, 0}}); err == nil {
		t.Fatal("short Ls accepted")
	}
}

func TestLastOutOfRange(t *testing.T) {
	cl, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if out := cl.Last(0); out.Round != 0 || out.ConsHV != nil {
		t.Fatalf("Last(0) = %+v", out)
	}
	if out := cl.Last(99); out.ConsHV != nil {
		t.Fatalf("Last(99) = %+v", out)
	}
}

// TestConcurrentMembershipClique runs the Sec. 8 clique scenario on the
// concurrent runtime: node 1 misses node 2's broadcast and must be excluded
// from the view at every node goroutine, identically to the lock-step run.
func TestConcurrentMembershipClique(t *testing.T) {
	cl, runners, err := NewMembershipCluster(Config{Ls: sim.Staircase(4), AllSendCurrRound: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.AddDisturbance(fault.ReceiverBlind{
		Receiver: 1, Senders: []tdma.NodeID{2}, FromRound: 8, ToRound: 9,
	})
	if err := cl.RunRounds(24); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		v := runners[id].View()
		if len(v.Members) != 3 || v.Members[0] != 2 {
			t.Fatalf("node %d view = %+v, want members [2 3 4]", id, v)
		}
		if v.ID != runners[1].View().ID || v.FormedAtRound != runners[1].View().FormedAtRound {
			t.Fatalf("views diverge across goroutines")
		}
	}
}

// TestConcurrentLowLat runs the constrained per-slot variant inside node
// goroutines: a single benign fault must be diagnosed with one-round latency
// and consistent verdicts.
func TestConcurrentLowLat(t *testing.T) {
	cl, runners, err := NewLowLatCluster(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	verdicts := make(map[int]core.Opinion)
	var mu sync.Mutex
	for id := 1; id <= 4; id++ {
		id := id
		runners[id].OnVerdict = func(v lowlat.Verdict) {
			if v.Round == 6 && v.Node == 3 {
				mu.Lock()
				verdicts[id] = v.Health
				mu.Unlock()
			}
		}
	}
	cl.AddDisturbance(fault.NewTrain(fault.SlotBurst(cl.Schedule(), 6, 3, 1)))
	if err := cl.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(verdicts) != 4 {
		t.Fatalf("verdicts from %d nodes, want 4", len(verdicts))
	}
	for id, h := range verdicts {
		if h != core.Faulty {
			t.Fatalf("node %d verdict %v", id, h)
		}
	}
}

func TestNewWithRunnersValidation(t *testing.T) {
	if _, err := NewWithRunners(Config{}, make([]sim.Runner, 2), []int{0, 0, 0, 0}); err == nil {
		t.Error("short runners accepted")
	}
	if _, err := NewWithRunners(Config{}, make([]sim.Runner, 5), []int{0}); err == nil {
		t.Error("short ls accepted")
	}
	if _, err := NewWithRunners(Config{}, make([]sim.Runner, 5), []int{0, 0, 0, 0}); err == nil {
		t.Error("nil runners accepted")
	}
}

// TestConcurrentHeterogeneousSlots runs the goroutine-per-node runtime on a
// custom per-slot schedule, matching the lock-step engine's support.
func TestConcurrentHeterogeneousSlots(t *testing.T) {
	cfg := Config{
		SlotLens: []time.Duration{
			250 * time.Microsecond,
			time.Millisecond,
			500 * time.Microsecond,
			750 * time.Microsecond,
		},
		Ls: sim.Staircase(4), AllSendCurrRound: true,
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Schedule().Uniform() {
		t.Fatal("custom schedule not applied")
	}
	cl.AddDisturbance(fault.NewTrain(fault.SlotBurst(cl.Schedule(), 6, 2, 1)))
	if err := cl.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		out := cl.Last(id)
		if out.ConsHV == nil || !out.ConsHV.Equal(cl.Last(1).ConsHV) {
			t.Fatalf("node %d disagreed on the heterogeneous schedule", id)
		}
	}
	if _, err := New(Config{SlotLens: []time.Duration{time.Millisecond}}); err == nil {
		t.Fatal("short SlotLens accepted")
	}
}

func TestNewWithRunnersBadPosition(t *testing.T) {
	runners := make([]sim.Runner, 5)
	for id := 1; id <= 4; id++ {
		r, err := sim.NewDiagRunner(sim.NodeConfig(mustNormal(t), id))
		if err != nil {
			t.Fatal(err)
		}
		runners[id] = r
	}
	if _, err := NewWithRunners(Config{}, runners, []int{0, 0, 0, 9}); err == nil {
		t.Fatal("out-of-range position accepted")
	}
}

func mustNormal(t *testing.T) Config {
	t.Helper()
	cfg, err := Normalize(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestMembershipClusterValidation(t *testing.T) {
	if _, _, err := NewMembershipCluster(Config{N: 1}); err == nil {
		t.Fatal("invalid membership cluster accepted")
	}
	if _, _, err := NewLowLatCluster(Config{N: 1}); err == nil {
		t.Fatal("invalid lowlat cluster accepted")
	}
}

// TestMembershipEquivalenceWithLockStep holds the membership variant to the
// same bit-identical cross-runtime guarantee as the diagnostic one.
func TestMembershipEquivalenceWithLockStep(t *testing.T) {
	cfg := Config{Ls: []int{2, 0, 3, 1}}
	mkDisturb := func(sched *tdma.Schedule) []tdma.Disturbance {
		return []tdma.Disturbance{
			fault.ReceiverBlind{Receiver: 1, Senders: []tdma.NodeID{2}, FromRound: 8, ToRound: 9},
			fault.NewTrain(fault.SlotBurst(sched, 14, 4, 1)),
		}
	}
	const rounds = 28

	engRef, refRunners, err := sim.NewMembershipCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range mkDisturb(engRef.Schedule()) {
		engRef.Bus().AddDisturbance(d)
	}
	if err := engRef.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}

	cl, clRunners, err := NewMembershipCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, d := range mkDisturb(cl.Schedule()) {
		cl.AddDisturbance(d)
	}
	if err := cl.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		want := refRunners[id].Service().History()
		got := clRunners[id].Service().History()
		if len(got) != len(want) {
			t.Fatalf("node %d: %d views vs lock-step %d", id, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].FormedAtRound != want[i].FormedAtRound ||
				len(got[i].Members) != len(want[i].Members) {
				t.Fatalf("node %d view %d: %+v vs lock-step %+v", id, i, got[i], want[i])
			}
		}
	}
}
