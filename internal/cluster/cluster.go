// Package cluster is the concurrent runtime: one goroutine per node, a
// channel-based TDMA bus, and a virtual-time coordinator. It demonstrates
// the paper's deployment model — the diagnostic job as an add-on
// application-level module on each host — while remaining deterministic:
// the coordinator walks the global communication schedule and synchronises
// with the node goroutines at slot and job boundaries, so a run produces
// bit-identical protocol state to the lock-step engine (asserted by the
// equivalence tests).
//
// Each node goroutine confines its communication controller and protocol
// instance; all interaction happens by message passing (share memory by
// communicating). Deliveries of one slot are fanned out to all node
// goroutines concurrently and joined before the next schedule event.
package cluster

import (
	"fmt"
	"sync"

	"ttdiag/internal/core"
	"ttdiag/internal/invariant"
	"ttdiag/internal/lowlat"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
	"ttdiag/internal/trace"
)

// Config mirrors sim.ClusterConfig for the concurrent runtime.
type Config = sim.ClusterConfig

// command messages sent from the coordinator to a node goroutine.
type (
	deliverCmd struct {
		sender    tdma.NodeID
		round     int
		slot      int
		delivery  tdma.Delivery
		collision bool // meaningful only at the sender itself
		reply     chan<- error
	}
	snapshotCmd struct {
		round int
		done  chan<- struct{}
	}
	jobCmd struct {
		round int
		reply chan<- jobReply
	}
)

// errClosed is returned by operations racing a concurrent Close.
var errClosed = fmt.Errorf("cluster: already closed")

type jobReply struct {
	payload []byte
	output  core.RoundOutput
	err     error
}

// nodeProc is one node's goroutine plus its mailbox. The runner, controller
// and all protocol state are confined to the goroutine; the coordinator only
// talks to it through the mailbox (share memory by communicating).
type nodeProc struct {
	id     tdma.NodeID
	l      int
	inbox  chan any
	quit   <-chan struct{}
	done   chan struct{}
	runner sim.Runner
	ctrl   *tdma.Controller
}

// loop is the node goroutine. Every channel operation — the mailbox receive
// and all reply sends — is select-guarded by the cluster-wide quit channel,
// so a node can never deadlock against a coordinator that stopped listening
// (the channel-discipline lint rule enforces this shape). quit only becomes
// ready at Close, so the selects are deterministic during a run.
func (np *nodeProc) loop() {
	defer close(np.done)
	for {
		var msg any
		select {
		case msg = <-np.inbox:
		case <-np.quit:
			return
		}
		switch m := msg.(type) {
		case deliverCmd:
			if m.sender == np.id {
				np.ctrl.RecordCollision(m.round, m.collision)
				if m.collision {
					np.ctrl.ApplyDelivery(m.sender, tdma.Delivery{})
				} else {
					np.ctrl.ApplyDelivery(m.sender, m.delivery)
				}
			} else {
				np.ctrl.ApplyDelivery(m.sender, m.delivery)
			}
			var err error
			if so, ok := np.runner.(sim.SlotObserver); ok {
				err = so.OnSlotComplete(m.round, m.slot, np.ctrl)
			}
			select {
			case m.reply <- err:
			case <-np.quit:
				return
			}
		case snapshotCmd:
			if st, ok := np.runner.(sim.SnapshotTaker); ok {
				st.CaptureSnapshot(m.round, np.ctrl)
			}
			select {
			case m.done <- struct{}{}:
			case <-np.quit:
				return
			}
		case jobCmd:
			payload, err := np.runner.Run(m.round, np.ctrl)
			rep := jobReply{payload: payload, err: err}
			if dr, ok := np.runner.(*sim.DiagRunner); ok {
				rep.output = dr.Last()
			}
			select {
			case m.reply <- rep:
			case <-np.quit:
				return
			}
		}
	}
}

// Cluster is the concurrent protocol cluster.
type Cluster struct {
	cfg   Config
	sched *tdma.Schedule
	dist  tdma.Disturbances
	nodes []*nodeProc // 1-based
	// outbox mirrors each node's staged interface value at the coordinator
	// (the value its controller would transmit next).
	outbox [][]byte
	last   []core.RoundOutput
	round  int
	sink   trace.Sink
	// quit is closed exactly once by Close; every mailbox send and reply
	// receive selects on it, so shutdown can never deadlock mid-round.
	quit    chan struct{}
	stopped bool
	mu      sync.Mutex
}

// New builds and starts the cluster; Close must be called to stop the node
// goroutines.
func New(cfg Config) (*Cluster, error) {
	cfg, err := Normalize(cfg)
	if err != nil {
		return nil, err
	}
	sched, err := newSchedule(cfg)
	if err != nil {
		return nil, err
	}
	sink := cfg.Sink
	if sink == nil {
		sink = trace.Discard{}
	}
	c := &Cluster{
		cfg:    cfg,
		sched:  sched,
		nodes:  make([]*nodeProc, cfg.N+1),
		outbox: make([][]byte, cfg.N+1),
		last:   make([]core.RoundOutput, cfg.N+1),
		sink:   sink,
		quit:   make(chan struct{}),
	}
	initial := core.NewSyndrome(cfg.N, core.Healthy).Encode()
	for id := 1; id <= cfg.N; id++ {
		runner, err := sim.NewDiagRunner(NodeConfig(cfg, id))
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := c.startNode(id, cfg.Ls[id-1], runner, initial); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// NewWithRunners builds a concurrent cluster over caller-supplied runners
// (one per node, 1-based positions in ls). The caller keeps the typed runner
// references; their state may be inspected between RunRound calls (the
// mailbox rendezvous establishes the necessary happens-before edges).
func NewWithRunners(cfg Config, runners []sim.Runner, ls []int) (*Cluster, error) {
	cfg, err := Normalize(cfg)
	if err != nil {
		return nil, err
	}
	if len(runners) != cfg.N+1 {
		return nil, fmt.Errorf("cluster: runners has %d entries, want %d (1-based)", len(runners), cfg.N+1)
	}
	if len(ls) != cfg.N {
		return nil, fmt.Errorf("cluster: ls has %d entries, want %d", len(ls), cfg.N)
	}
	sched, err := newSchedule(cfg)
	if err != nil {
		return nil, err
	}
	sink := cfg.Sink
	if sink == nil {
		sink = trace.Discard{}
	}
	c := &Cluster{
		cfg:    cfg,
		sched:  sched,
		nodes:  make([]*nodeProc, cfg.N+1),
		outbox: make([][]byte, cfg.N+1),
		last:   make([]core.RoundOutput, cfg.N+1),
		sink:   sink,
		quit:   make(chan struct{}),
	}
	initial := core.NewSyndrome(cfg.N, core.Healthy).Encode()
	for id := 1; id <= cfg.N; id++ {
		if runners[id] == nil {
			c.Close()
			return nil, fmt.Errorf("cluster: runner %d is nil", id)
		}
		if ls[id-1] < 0 || ls[id-1] > cfg.N-1 {
			c.Close()
			return nil, fmt.Errorf("cluster: node %d position %d out of range", id, ls[id-1])
		}
		if err := c.startNode(id, ls[id-1], runners[id], initial); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// NewMembershipCluster builds a concurrent cluster of membership services
// and returns the typed runners for view inspection.
func NewMembershipCluster(cfg Config) (*Cluster, []*sim.MembershipRunner, error) {
	cfg, err := Normalize(cfg)
	if err != nil {
		return nil, nil, err
	}
	runners := make([]sim.Runner, cfg.N+1)
	typed := make([]*sim.MembershipRunner, cfg.N+1)
	for id := 1; id <= cfg.N; id++ {
		nodeCfg := NodeConfig(cfg, id)
		nodeCfg.Mode = core.ModeMembership
		r, err := sim.NewMembershipRunner(nodeCfg)
		if err != nil {
			return nil, nil, err
		}
		runners[id], typed[id] = r, r
	}
	cl, err := NewWithRunners(cfg, runners, cfg.Ls)
	if err != nil {
		return nil, nil, err
	}
	return cl, typed, nil
}

// NewLowLatCluster builds a concurrent cluster of the constrained
// system-level variant (per-slot analysis inside every node goroutine).
func NewLowLatCluster(cfg Config) (*Cluster, []*sim.LowLatRunner, error) {
	cfg, err := Normalize(cfg)
	if err != nil {
		return nil, nil, err
	}
	runners := make([]sim.Runner, cfg.N+1)
	typed := make([]*sim.LowLatRunner, cfg.N+1)
	ls := make([]int, cfg.N)
	for id := 1; id <= cfg.N; id++ {
		r, err := sim.NewLowLatRunner(lowlatConfig(cfg, id))
		if err != nil {
			return nil, nil, err
		}
		runners[id], typed[id] = r, r
		ls[id-1] = id - 1 // constrained: stage right before the own slot
	}
	cl, err := NewWithRunners(cfg, runners, ls)
	if err != nil {
		return nil, nil, err
	}
	return cl, typed, nil
}

func lowlatConfig(cfg Config, id int) lowlat.Config {
	return lowlat.Config{N: cfg.N, ID: id, Mode: cfg.Mode, PR: cfg.PR}
}

// newSchedule builds the TDMA schedule (uniform or per-slot) for the
// concurrent runtime, mirroring the lock-step engine's rules.
func newSchedule(cfg Config) (*tdma.Schedule, error) {
	if len(cfg.SlotLens) > 0 {
		if len(cfg.SlotLens) != cfg.N {
			return nil, fmt.Errorf("cluster: SlotLens has %d entries, want %d", len(cfg.SlotLens), cfg.N)
		}
		return tdma.NewCustomSchedule(cfg.SlotLens)
	}
	return tdma.NewSchedule(cfg.N, cfg.RoundLen)
}

// startNode spawns one node goroutine.
func (c *Cluster) startNode(id, l int, runner sim.Runner, initial []byte) error {
	ctrl, err := tdma.NewController(tdma.NodeID(id), c.cfg.N)
	if err != nil {
		return err
	}
	np := &nodeProc{
		id:     tdma.NodeID(id),
		l:      l,
		inbox:  make(chan any),
		quit:   c.quit,
		done:   make(chan struct{}),
		runner: runner,
		ctrl:   ctrl,
	}
	c.nodes[id] = np
	c.outbox[id] = initial
	go np.loop()
	return nil
}

// Normalize applies the same defaulting rules as the lock-step engine so
// that both runtimes accept identical configurations.
func Normalize(cfg Config) (Config, error) {
	return sim.NormalizeConfig(cfg)
}

// NodeConfig derives node id's protocol configuration, identical to the
// lock-step engine's derivation.
func NodeConfig(cfg Config, id int) core.Config {
	return sim.NodeConfig(cfg, id)
}

// AddDisturbance appends a disturbance to the virtual bus.
func (c *Cluster) AddDisturbance(d tdma.Disturbance) { c.dist = append(c.dist, d) }

// Round returns the next round to execute.
func (c *Cluster) Round() int { return c.round }

// Schedule returns the cluster's global communication schedule.
func (c *Cluster) Schedule() *tdma.Schedule { return c.sched }

// Last returns the most recent round output of node id.
func (c *Cluster) Last(id int) core.RoundOutput {
	if id < 1 || id >= len(c.last) {
		return core.RoundOutput{}
	}
	return c.last[id]
}

// post delivers one command to node id's mailbox, giving up cleanly if the
// cluster is shut down concurrently.
func (c *Cluster) post(id int, msg any) error {
	select {
	case c.nodes[id].inbox <- msg:
		return nil
	case <-c.quit:
		return errClosed
	}
}

// RunRound drives the cluster through one TDMA round.
func (c *Cluster) RunRound() error {
	select {
	case <-c.quit:
		return errClosed
	default:
	}
	k := c.round
	n := c.cfg.N
	// Round-start snapshots for dynamically scheduled / snapshotting nodes.
	snapDone := make(chan struct{}, n)
	for id := 1; id <= n; id++ {
		if err := c.post(id, snapshotCmd{round: k, done: snapDone}); err != nil {
			return err
		}
	}
	for id := 1; id <= n; id++ {
		select {
		case <-snapDone:
		case <-c.quit:
			return errClosed
		}
	}
	for pos := 0; pos <= n; pos++ {
		// Node jobs scheduled at this position (concurrently, then join).
		replies := make(map[int]chan jobReply)
		for id := 1; id <= n; id++ {
			if c.nodes[id].l != pos {
				continue
			}
			ch := make(chan jobReply, 1)
			replies[id] = ch
			if err := c.post(id, jobCmd{round: k, reply: ch}); err != nil {
				return err
			}
		}
		for id := 1; id <= n; id++ {
			ch, ok := replies[id]
			if !ok {
				continue
			}
			var rep jobReply
			select {
			case rep = <-ch:
			case <-c.quit:
				return errClosed
			}
			if rep.err != nil {
				return fmt.Errorf("cluster: round %d node %d: %w", k, id, rep.err)
			}
			if rep.payload != nil {
				c.outbox[id] = rep.payload
			}
			c.last[id] = rep.output
			c.sink.Record(trace.Event{
				At: c.sched.RoundStart(k), Round: k, Kind: trace.KindJobRun, Node: id,
			})
		}
		if pos == n {
			break
		}
		if err := c.transmit(k, pos+1); err != nil {
			return err
		}
	}
	if invariant.Enabled {
		c.checkRoundAgreement(k)
	}
	c.round++
	return nil
}

// checkRoundAgreement asserts the paper's consistent-diagnosis property at
// the round boundary (ttdiag_invariants builds only): every node goroutine
// that produced a health vector this round must agree on both the diagnosed
// round and the vector itself, bit for bit.
func (c *Cluster) checkRoundAgreement(round int) {
	var ref core.RoundOutput
	refID := 0
	for id := 1; id <= c.cfg.N; id++ {
		out := c.last[id]
		if out.ConsHV == nil || out.Round != round {
			continue
		}
		if refID == 0 {
			ref, refID = out, id
			continue
		}
		invariant.Checkf(out.DiagnosedRound == ref.DiagnosedRound,
			"cluster: round %d: nodes %d and %d diagnose different rounds (%d vs %d)",
			round, refID, id, ref.DiagnosedRound, out.DiagnosedRound)
		invariant.Checkf(out.ConsHV.Equal(ref.ConsHV),
			"cluster: round %d: health vectors diverge across goroutines: node %d says %s, node %d says %s",
			round, refID, ref.ConsHV, id, out.ConsHV)
	}
}

// transmit broadcasts one slot: the disturbance chain decides each
// receiver's delivery, the deliveries are fanned out to all node goroutines
// concurrently and joined.
func (c *Cluster) transmit(round, slot int) error {
	sender := c.sched.SlotOwner(slot)
	start, end := c.sched.SlotWindow(round, slot)
	tx := tdma.Transmission{
		Sender:  sender,
		Round:   round,
		Slot:    slot,
		Start:   start,
		End:     end,
		Payload: append([]byte(nil), c.outbox[sender]...),
	}
	collision := c.dist.SenderCollision(&tx, false)
	reply := make(chan error, c.cfg.N)
	for rcv := 1; rcv <= c.cfg.N; rcv++ {
		d := tdma.Delivery{Valid: true, Payload: tx.Payload}
		d = c.dist.Deliver(&tx, tdma.NodeID(rcv), d)
		if !d.Valid {
			d.Payload = nil
		}
		if err := c.post(rcv, deliverCmd{
			sender:    sender,
			round:     round,
			slot:      slot,
			delivery:  d,
			collision: collision,
			reply:     reply,
		}); err != nil {
			return err
		}
	}
	var firstErr error
	for rcv := 1; rcv <= c.cfg.N; rcv++ {
		var err error
		select {
		case err = <-reply:
		case <-c.quit:
			return errClosed
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return fmt.Errorf("cluster: round %d slot %d: %w", round, slot, firstErr)
	}
	c.sink.Record(trace.Event{At: start, Round: round, Kind: trace.KindTransmit, Node: int(sender)})
	return nil
}

// RunRounds drives the cluster through the given number of rounds.
func (c *Cluster) RunRounds(count int) error {
	for i := 0; i < count; i++ {
		if err := c.RunRound(); err != nil {
			return err
		}
	}
	return nil
}

// Close stops all node goroutines and waits for them to exit. It is
// idempotent: the quit channel is closed exactly once and every goroutine —
// whether idle in its mailbox receive or mid-reply — observes it and
// returns.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.stopped = true
	close(c.quit)
	for _, np := range c.nodes {
		if np == nil {
			continue
		}
		<-np.done
	}
}
