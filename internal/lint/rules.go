package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pass is the per-package context handed to each rule.
type pass struct {
	path   string
	fset   *token.FileSet
	files  []*ast.File
	info   *types.Info
	report func(pos token.Pos, rule, format string, args ...any)
	// ignorer exposes the package's //lint:ignore directives and their usage
	// marks to the stale-ignore rule.
	ignorer *ignorer
	// enabled is the rule subset this run executes; stale-ignore consults it
	// so directives for unselected rules are never reported dead.
	enabled map[string]bool
	// noretain returns the //ttdiag:noretain contract of a function object
	// (resolved across the whole analyzed root); the zero scope means no
	// annotation.
	noretain func(obj types.Object) noretainScope
}

// rule is one named check with its applicability predicate.
type rule struct {
	name    string
	applies func(pkgPath string) bool
	run     func(*pass)
}

// deterministicPkgs are the packages whose execution must be a pure function
// of configuration and seed: the protocol core, both runtimes, the TDMA
// substrate and everything that feeds them. Matching is by import-path
// suffix so the same sets cover the real module and the test fixture tree.
var deterministicPkgs = []string{
	"internal/core",
	"internal/sim",
	"internal/cluster",
	"internal/campaign",
	"internal/fleet",
	"internal/tdma",
	"internal/fault",
	"internal/lowlat",
	"internal/membership",
	"internal/metrics",
	"internal/replay",
	"internal/splitting",
	"internal/stats",
	"internal/trace",
	"internal/bisect",
}

// orderSensitivePkgs covers the packages where map-iteration order would
// leak into rendered artefacts and transcripts; since internal/trace and
// internal/stats joined the deterministic set, the two sets coincide.
var orderSensitivePkgs = deterministicPkgs

// channelPkgs hosts the goroutine-per-node runtime and the campaign worker
// pool, whose shutdown discipline the channel rule enforces. The lock-step
// simulation layer and the TDMA substrate are covered too: they must stay
// channel-free (any channel there would imply scheduling-dependent state),
// so the rule flags every unbuffered make(chan) in them.
var channelPkgs = []string{"internal/cluster", "internal/campaign", "internal/sim", "internal/tdma"}

// randExemptPkgs may touch math/rand directly: internal/rng is the sanctioned
// seeded-stream wrapper everything else must go through.
var randExemptPkgs = []string{"internal/rng"}

func inPkgs(pkgPath string, set []string) bool {
	for _, s := range set {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// rules is the registry, in reporting-priority order (output is re-sorted by
// position anyway).
var rules = []rule{
	{
		name:    "no-wallclock",
		applies: func(p string) bool { return inPkgs(p, deterministicPkgs) },
		run:     checkWallclock,
	},
	{
		name:    "no-global-rand",
		applies: func(p string) bool { return !inPkgs(p, randExemptPkgs) },
		run:     checkGlobalRand,
	},
	{
		name:    "no-map-range-state",
		applies: func(p string) bool { return inPkgs(p, orderSensitivePkgs) },
		run:     checkMapRange,
	},
	{
		name:    "channel-discipline",
		applies: func(p string) bool { return inPkgs(p, channelPkgs) },
		run:     checkChannelDiscipline,
	},
	{
		// no-retain is annotation-driven (//ttdiag:noretain), so it is safe
		// and cheap to run everywhere: packages without annotated providers
		// or borrowed values produce no findings.
		name:    "no-retain",
		applies: func(p string) bool { return true },
		run:     checkNoRetain,
	},
	{
		// stale-ignore must stay last in the registry: it audits which
		// //lint:ignore directives the rules above actually consumed. Its
		// run func is bound in init — checkStaleIgnore inspects the registry
		// itself, which would otherwise be an initialization cycle.
		name:    "stale-ignore",
		applies: func(p string) bool { return true },
	},
}

func init() {
	rules[len(rules)-1].run = checkStaleIgnore
}

// checkStaleIgnore flags //lint:ignore directives that suppressed nothing in
// this run. A directive naming a rule that did not execute on its package
// (deselected via RunRules, or inapplicable there) is skipped rather than
// reported: its liveness cannot be judged. A directive naming a rule that
// does not exist at all is always dead.
func checkStaleIgnore(p *pass) {
	known := make(map[string]bool, len(rules))
	for _, r := range rules {
		known[r.name] = true
	}
	for _, d := range p.ignorer.directives {
		if d.used {
			continue
		}
		if !known[d.rule] && d.rule != "all" {
			p.report(d.pos, "stale-ignore",
				"//lint:ignore names unknown rule %q; known rules: %s", d.rule, strings.Join(RuleNames(), ", "))
			continue
		}
		ran := false
		if d.rule == "all" {
			for _, r := range rules {
				if r.name != "stale-ignore" && p.enabled[r.name] && r.applies(p.path) {
					ran = true
					break
				}
			}
		} else {
			for _, r := range rules {
				if r.name == d.rule {
					ran = p.enabled[r.name] && r.applies(p.path)
				}
			}
		}
		if !ran {
			continue
		}
		p.report(d.pos, "stale-ignore",
			"//lint:ignore %s suppresses nothing; delete the directive or restore the exception it documented", d.rule)
	}
}

// wallclockFns are the package time functions that read or depend on the
// host clock. time.Duration arithmetic and constants stay legal — only the
// clock itself is banned from deterministic packages.
var wallclockFns = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// checkWallclock flags any use (call or function value) of a wall-clock
// function from package time.
func checkWallclock(p *pass) {
	p.eachUse(func(id *ast.Ident, fn *types.Func) {
		if fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallclockFns[fn.Name()] {
			p.report(id.Pos(), "no-wallclock",
				"time.%s reads the host clock; deterministic packages must derive time from the simulated schedule", fn.Name())
		}
	})
}

// globalRandFns are the top-level math/rand (and v2) functions backed by the
// shared global source. Constructors (New, NewSource, NewPCG, ...) and
// methods on an owned *rand.Rand are allowed; the seeded internal/rng
// streams are the sanctioned way to get one.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true, "NormFloat64": true, "ExpFloat64": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

// checkGlobalRand flags uses of the global math/rand source.
func checkGlobalRand(p *pass) {
	p.eachUse(func(id *ast.Ident, fn *types.Func) {
		pkg := fn.Pkg()
		if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // a method on an owned *rand.Rand is fine
		}
		if globalRandFns[fn.Name()] {
			p.report(id.Pos(), "no-global-rand",
				"rand.%s draws from the unseeded global source; use a named stream from internal/rng", fn.Name())
		}
	})
}

// checkMapRange flags range statements over map-typed expressions: Go's map
// iteration order is deliberately randomized, so any such loop in a
// protocol, snapshot or trace code path can leak nondeterminism into emitted
// state. Iterate a sorted key slice instead, or suppress with a reason.
func checkMapRange(p *pass) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				p.report(rs.Pos(), "no-map-range-state",
					"map iteration order is nondeterministic; iterate sorted keys (or suppress with a reason if the order provably cannot escape)")
			}
			return true
		})
	}
}

// checkChannelDiscipline enforces the concurrent runtime's two structural
// rules: (1) every channel send must sit in a select with a shutdown case,
// so a node goroutine can never deadlock against a coordinator that has
// stopped listening; (2) no function may take a mutex-bearing value by copy
// (receiver or parameter), the static shadow of go vet's copylocks for the
// signatures the runtime exchanges.
func checkChannelDiscipline(p *pass) {
	for _, f := range p.files {
		// Sends that are the communication op of a select clause are the
		// sanctioned form; every other send is flagged.
		selectComms := make(map[ast.Stmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					selectComms[cc.Comm] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if !selectComms[send] {
				p.report(send.Arrow, "channel-discipline",
					"bare channel send can deadlock a node goroutine at shutdown; send inside a select with a quit case")
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			check := func(fl *ast.FieldList) {
				if fl == nil {
					return
				}
				for _, field := range fl.List {
					tv, ok := p.info.Types[field.Type]
					if !ok || tv.Type == nil {
						continue
					}
					if containsLock(tv.Type, make(map[types.Type]bool)) {
						p.report(field.Pos(), "channel-discipline",
							"passing a mutex-bearing value by copy duplicates its lock state; take a pointer")
					}
				}
			}
			check(fd.Recv)
			check(fd.Type.Params)
			return true
		})
	}
}

// containsLock reports whether t transitively holds sync state by value.
// Pointers (and channels, maps, slices) break the chain: sharing a pointer
// to a lock is fine, copying the lock is not.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return true
			}
		}
		return containsLock(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// eachUse calls fn for every identifier in the package that resolves to a
// *types.Func, covering both calls and function-value references.
func (p *pass) eachUse(fn func(id *ast.Ident, obj *types.Func)) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if obj, ok := p.info.Uses[sel.Sel].(*types.Func); ok {
				fn(sel.Sel, obj)
			}
			return true
		})
	}
}
