package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file from current analyzer output")

func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestGolden runs every rule over the fixture tree and compares the full
// sorted diagnostic listing against the checked-in golden file: each rule's
// negative cases must fire and each //lint:ignore suppression must hold.
func TestGolden(t *testing.T) {
	diags, err := Run(fixtureRoot(t), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()
	golden := filepath.Join("testdata", "expect.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("diagnostics diverge from %s (rerun with -update to accept):\ngot:\n%swant:\n%s", golden, got, want)
	}
}

// TestGoldenCoversEveryRule guards the golden file itself: a refactor that
// silently stops a rule from firing must not pass unnoticed.
func TestGoldenCoversEveryRule(t *testing.T) {
	diags, err := Run(fixtureRoot(t), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, d := range diags {
		seen[d.Rule]++
	}
	for _, r := range rules {
		if seen[r.name] == 0 {
			t.Errorf("rule %s produced no finding on the fixture tree", r.name)
		}
	}
}

// TestSuppressedLinesStayQuiet pins the directive semantics: the sorted-key
// collection loop, the same-line sleep and the exempt rng package must not
// appear in the output, while the reason-less directive must not suppress.
func TestSuppressedLinesStayQuiet(t *testing.T) {
	diags, err := Run(fixtureRoot(t), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.HasPrefix(d.Position.Filename, "internal/rng/") {
			t.Errorf("finding in the rand-exempt package: %s", d)
		}
		if strings.HasPrefix(d.Position.Filename, "internal/tdma/") {
			t.Errorf("finding in the clean fixture package: %s", d)
		}
	}
	// The reason-less directive in core/fixture.go precedes a time.Sleep at
	// line 57 that must still be reported.
	found := false
	for _, d := range diags {
		if d.Position.Filename == "internal/core/fixture.go" && d.Position.Line == 57 {
			found = true
		}
	}
	if !found {
		t.Error("a //lint:ignore directive without a reason suppressed a finding")
	}
}

// TestSingleDirPattern checks explicit-package patterns.
func TestSingleDirPattern(t *testing.T) {
	diags, err := Run(fixtureRoot(t), []string{"./internal/rng"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("rand-exempt package produced findings: %v", diags)
	}
	diags, err = Run(fixtureRoot(t), []string{"./internal/cluster"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("cluster fixture produced %d findings, want 2: %v", len(diags), diags)
	}
}

// TestSelfCheck asserts the repository is clean under its own analyzer — the
// property scripts/check.sh enforces in CI.
func TestSelfCheck(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	diags, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository is not lint-clean: %s", d)
	}
}

// TestDiagnosticsSorted pins the stable output ordering CI depends on.
func TestDiagnosticsSorted(t *testing.T) {
	diags, err := Run(fixtureRoot(t), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Position.Filename > b.Position.Filename ||
			(a.Position.Filename == b.Position.Filename && a.Position.Line > b.Position.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
}
