// Package lint is ttdiag's determinism analyzer: a stdlib-only static
// analysis pass over the repository's own source that mechanically enforces
// the invariants the cross-engine equivalence tests rely on. The concurrent
// goroutine-per-node runtime (internal/cluster) must produce bit-identical
// protocol state to the lock-step engine (internal/sim); any hidden
// nondeterminism source — wall-clock reads, the global math/rand source, Go
// map-iteration order leaking into emitted state — silently breaks the
// paper's consistent-diagnosis property (Serafini et al., DSN 2007). The
// analyzer flags those sources at the source level, where the race detector
// and example-based tests cannot see them.
//
// Six rules are implemented (see rules.go): no-wallclock, no-global-rand,
// no-map-range-state, channel-discipline, no-retain and stale-ignore. Every
// finding is individually suppressible with a directive comment on the
// offending line or the line directly above it:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is ignored. Directives
// that stop suppressing anything are themselves findings (stale-ignore), so
// the suppression inventory cannot silently rot. The no-retain rule is
// driven by a second directive, //ttdiag:noretain, on a function's doc
// comment: it marks the function's reference-typed results as borrowed
// scratch views and its reference-typed parameters as borrowed inputs (see
// noretain.go). The analyzer uses only go/ast, go/build, go/parser,
// go/token, go/types and go/importer, matching the module's zero-dependency
// go.mod.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned relative to the analyzed root.
type Diagnostic struct {
	// Position locates the finding; Filename is root-relative with forward
	// slashes, so diagnostic output is stable across machines.
	Position token.Position
	// Rule names the violated rule.
	Rule string
	// Message explains the finding.
	Message string
}

// String renders the finding in the stable file:line:col format CI greps.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Rule, d.Message)
}

// Run analyzes the packages matched by patterns, which are interpreted
// relative to root (a directory; "./..." walks the whole tree, "./x/..."
// walks a subtree, anything else names one package directory). When root
// contains a go.mod, its module path prefixes the import path of every
// analyzed package; otherwise import paths are the root-relative directory
// paths (the fixture-tree convention). The returned diagnostics are sorted
// by file, line, column and rule. All rules run; RunRules selects a subset.
func Run(root string, patterns []string) ([]Diagnostic, error) {
	return RunRules(root, patterns, nil)
}

// RuleNames returns the registered rule names in registry order.
func RuleNames() []string {
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.name
	}
	return names
}

// RunRules is Run restricted to the named rules (nil or empty = all rules).
// An unknown rule name is an error. Note that stale-ignore only audits
// directives naming rules that actually ran: selecting a subset never makes
// a directive for an unselected rule look dead.
func RunRules(root string, patterns, ruleNames []string) ([]Diagnostic, error) {
	enabled := make(map[string]bool, len(rules))
	if len(ruleNames) == 0 {
		for _, r := range rules {
			enabled[r.name] = true
		}
	} else {
		known := make(map[string]bool, len(rules))
		for _, r := range rules {
			known[r.name] = true
		}
		for _, name := range ruleNames {
			if !known[name] {
				return nil, fmt.Errorf("lint: unknown rule %q (known: %s)", name, strings.Join(RuleNames(), ", "))
			}
			enabled[name] = true
		}
	}
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	a := &analyzer{
		root:     root,
		module:   modulePath(root),
		fset:     token.NewFileSet(),
		checked:  make(map[string]*checkedPkg),
		enabled:  enabled,
		noretain: make(map[types.Object]noretainScope),
	}
	a.std = importer.ForCompiler(a.fset, "source", nil)

	dirs, err := a.expand(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, dir := range dirs {
		ds, err := a.analyzeDir(dir)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// modulePath reads the module directive from root/go.mod, or returns "".
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// analyzer loads, typechecks and lints packages under one root.
type analyzer struct {
	root    string
	module  string
	fset    *token.FileSet
	std     types.Importer
	checked map[string]*checkedPkg
	// enabled is the selected rule subset (rule name -> run it).
	enabled map[string]bool
	// noretain indexes the //ttdiag:noretain annotation across every package
	// typechecked under this root (dependencies included), so a consumer
	// package sees the contract of the provider it imports.
	noretain map[types.Object]noretainScope
}

// noretainScope records which side of a //ttdiag:noretain contract a
// function declares: borrowed parameters (the body must not retain them),
// borrowed results (callers must not retain them), or both.
type noretainScope struct {
	params, results bool
}

// checkedPkg memoizes one typechecked package.
type checkedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

// expand resolves the CLI patterns into package directories.
func (a *analyzer) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			base := a.root
			if pat != "..." {
				base = filepath.Join(a.root, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			}
			if err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			}); err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(a.root, filepath.FromSlash(pat)))
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPath maps a directory under root to its import path.
func (a *analyzer) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(a.root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		if a.module != "" {
			return a.module, nil
		}
		return "main", nil
	}
	if strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("lint: %s is outside the analyzed root %s", dir, a.root)
	}
	if a.module != "" {
		return a.module + "/" + rel, nil
	}
	return rel, nil
}

// analyzeDir typechecks one package directory and runs every rule on it.
func (a *analyzer) analyzeDir(dir string) ([]Diagnostic, error) {
	path, err := a.importPath(dir)
	if err != nil {
		return nil, err
	}
	cp := a.check(dir, path)
	if cp.err != nil {
		return nil, cp.err
	}
	ig := newIgnorer(a.fset, cp.files)
	var diags []Diagnostic
	p := &pass{
		path:    path,
		fset:    a.fset,
		files:   cp.files,
		info:    cp.info,
		ignorer: ig,
		enabled: a.enabled,
		noretain: func(obj types.Object) noretainScope {
			if obj == nil {
				return noretainScope{}
			}
			return a.noretain[obj]
		},
		report: func(pos token.Pos, rule, format string, args ...any) {
			position := a.fset.Position(pos)
			if ig.suppressed(position, rule) {
				return
			}
			if rel, err := filepath.Rel(a.root, position.Filename); err == nil {
				position.Filename = filepath.ToSlash(rel)
			}
			diags = append(diags, Diagnostic{
				Position: position,
				Rule:     rule,
				Message:  fmt.Sprintf(format, args...),
			})
		},
	}
	// Registry order matters only for stale-ignore, which is registered last
	// so it observes which directives the other rules consumed.
	for _, r := range rules {
		if a.enabled[r.name] && r.applies(path) {
			r.run(p)
		}
	}
	return diags, nil
}

// check parses and typechecks the package in dir, memoized by import path.
// Build constraints are honoured via go/build, so tag-gated files (e.g. the
// ttdiag_invariants variant of internal/invariant) are resolved exactly as
// an untagged `go build` would resolve them. _test.go files are excluded:
// tests may legitimately sleep, time out and shuffle.
func (a *analyzer) check(dir, path string) *checkedPkg {
	if cp, ok := a.checked[path]; ok {
		return cp
	}
	cp := &checkedPkg{}
	a.checked[path] = cp

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		cp.err = fmt.Errorf("lint: %s: %w", dir, err)
		return cp
	}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(a.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			cp.err = fmt.Errorf("lint: %w", err)
			return cp
		}
		cp.files = append(cp.files, f)
	}
	cp.info = &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*moduleImporter)(a),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	cp.pkg, _ = conf.Check(path, a.fset, cp.files, cp.info)
	if len(typeErrs) > 0 {
		cp.err = fmt.Errorf("lint: typecheck %s: %v", path, typeErrs[0])
		return cp
	}
	// Index //ttdiag:noretain annotations now, so packages that import this
	// one (typechecking is demand-driven through moduleImporter, dependencies
	// first) can resolve the contract of the functions they call. The
	// directive optionally restricts its scope: "//ttdiag:noretain params"
	// covers only the parameters, "//ttdiag:noretain results" only the
	// results; the bare directive covers both.
	for _, f := range cp.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text, ok := strings.CutPrefix(c.Text, "//ttdiag:noretain")
				if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
					continue
				}
				obj := cp.info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				scope := a.noretain[obj]
				args := strings.Fields(text)
				if len(args) == 0 {
					scope.params, scope.results = true, true
				}
				for _, arg := range args {
					switch arg {
					case "params":
						scope.params = true
					case "results":
						scope.results = true
					}
				}
				a.noretain[obj] = scope
			}
		}
	}
	return cp
}

// moduleImporter resolves intra-module imports by typechecking the imported
// package from source under the analyzed root, and delegates everything else
// to the stdlib source importer (GOROOT/src; no network, no go command).
type moduleImporter analyzer

var _ types.ImporterFrom = (*moduleImporter)(nil)

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (m *moduleImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	a := (*analyzer)(m)
	if a.module != "" && (path == a.module || strings.HasPrefix(path, a.module+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, a.module), "/")
		cp := a.check(filepath.Join(a.root, filepath.FromSlash(rel)), path)
		if cp.err != nil {
			return nil, cp.err
		}
		return cp.pkg, nil
	}
	return a.std.Import(path)
}

// ignorer indexes //lint:ignore directives by file and line. A directive
// suppresses matching findings on its own line (trailing comment) and on the
// line directly below it (standalone comment above the statement). Each
// directive remembers whether it ever suppressed a finding, which is what
// the stale-ignore rule audits.
type ignorer struct {
	// at[file][line] lists the directives ignoring rules at that line.
	at map[string]map[int][]*directive
	// directives lists every well-formed directive in declaration order.
	directives []*directive
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	// pos is the comment's own position (for stale-ignore findings).
	pos token.Pos
	// rule is the named rule (or "all").
	rule string
	// used records whether the directive suppressed at least one finding
	// during this analysis.
	used bool
}

func newIgnorer(fset *token.FileSet, files []*ast.File) *ignorer {
	ig := &ignorer{at: make(map[string]map[int][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// The reason is mandatory; an unexplained directive
					// does not suppress anything.
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := ig.at[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*directive)
					ig.at[pos.Filename] = byLine
				}
				d := &directive{pos: c.Pos(), rule: fields[0]}
				byLine[pos.Line] = append(byLine[pos.Line], d)
				ig.directives = append(ig.directives, d)
			}
		}
	}
	return ig
}

func (ig *ignorer) suppressed(pos token.Position, rule string) bool {
	byLine := ig.at[pos.Filename]
	if byLine == nil {
		return false
	}
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.rule == rule || d.rule == "all" {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}
