// Package staleignore exercises the suppression-inventory audit: a live
// //lint:ignore directive stays quiet, a directive that suppresses nothing is
// itself a finding, and so is one naming a rule that does not exist.
package staleignore

import "math/rand"

// Roll carries a live suppression: the directive consumes the finding on the
// next line, so stale-ignore must not flag it.
func Roll() int {
	//lint:ignore no-global-rand fixture: the directive below is live
	return rand.Intn(6)
}

// Dead carries a directive with nothing left to suppress — the violation it
// once excused has been refactored away.
func Dead() int {
	//lint:ignore no-global-rand fixture: stale, the call it excused is gone
	return 6
}

// Unknown names a rule that was never registered, so the directive can never
// suppress anything.
func Unknown() int {
	//lint:ignore no-determinism fixture: misspelled rule name
	return 7
}
