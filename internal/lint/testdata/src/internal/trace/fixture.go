// Package trace mirrors internal/trace in the fixture tree: trace streams
// are replay artefacts, so wall-clock timestamps in them are findings now
// that the package is in the deterministic set.
package trace

import "time"

// Event is one trace record.
type Event struct {
	Round int
	At    time.Duration
}

// SlotTime derives the timestamp from the simulated schedule — legal.
func SlotTime(round, slot, slotsPerRound int, slotLen time.Duration) time.Duration {
	return time.Duration(round*slotsPerRound+slot) * slotLen
}

// Emit stamps the event with the host clock instead of the schedule.
func Emit(round int) Event {
	return Event{Round: round, At: time.Since(time.Time{})}
}
