// Package tdma is a clean lint fixture: deterministic code in a scoped
// package that must produce zero findings.
package tdma

import "time"

// SlotLen is duration arithmetic, not a clock read.
const SlotLen = 250 * time.Microsecond

// Window derives times from the simulated schedule only.
func Window(slot int) (time.Duration, time.Duration) {
	start := time.Duration(slot) * SlotLen
	return start, start + SlotLen
}

// Join iterates a slice — ordered, allowed anywhere.
func Join(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p
	}
	return out
}
