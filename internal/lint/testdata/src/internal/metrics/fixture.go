// Package metrics is a lint fixture for the telemetry layer: instruments
// must never read the host clock and snapshots must never leak
// map-iteration order; only the explicitly suppressed progress-reporter
// pattern may touch wall-clock time. Never built by the real module
// (testdata).
package metrics

import (
	"sort"
	"time"
)

// Stamp reads the host clock into a would-be metric value — forbidden.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Export leaks map-iteration order into an emitted sequence — forbidden.
func Export(counters map[string]int64) []int64 {
	var out []int64
	for _, v := range counters {
		out = append(out, v)
	}
	return out
}

// SnapshotKeys is the sanctioned pattern: collect, sort, then emit.
func SnapshotKeys(counters map[string]int64) []string {
	keys := make([]string, 0, len(counters))
	//lint:ignore no-map-range-state key collection precedes the sort below
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Rate is the progress-reporter exception: wall-clock reads are allowed
// only under an explicit suppression that names the reason.
func Rate(done int64, start time.Time) float64 {
	//lint:ignore no-wallclock opt-in progress reporter; excluded from deterministic outputs
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(done) / elapsed.Seconds()
}
