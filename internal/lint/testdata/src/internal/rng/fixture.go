// Package rng is a lint fixture: it mirrors the real internal/rng, the one
// package exempt from no-global-rand because it is the sanctioned seeded
// wrapper everything else must use.
package rng

import "math/rand"

// Draw may touch the global source here without a finding.
func Draw(n int) int { return rand.Intn(n) }
