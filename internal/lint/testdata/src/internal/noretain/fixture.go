// Package noretain exercises the //ttdiag:noretain contract: annotated
// providers hand out scratch views, annotated entry points borrow their
// parameters, and every way of extending the borrow past the call must be
// flagged while the sanctioned copy-out idioms stay quiet.
package noretain

// scratch is the buffer View hands out, overwritten by Refresh.
var scratch = make([]byte, 8)

// retained is a package-level sink the fixtures try to leak into.
var retained []byte

// View returns the package's scratch buffer; callers must not retain it.
//
//ttdiag:noretain
func View() []byte { return scratch }

// Pair returns the scratch buffer alongside a scalar, the multi-value form.
//
//ttdiag:noretain
func Pair() ([]byte, bool) { return scratch, true }

// holder is a struct the fixtures try to store borrowed views into.
type holder struct {
	buf     []byte
	entries [][]byte
}

// storeField leaks the view into a struct field.
func (h *holder) storeField() {
	h.buf = View()
}

// storeGlobal leaks the view into a package-level variable.
func storeGlobal() {
	retained = View()
}

// storeMulti leaks the first result of a multi-value provider.
func (h *holder) storeMulti() bool {
	var ok bool
	h.buf, ok = Pair()
	return ok
}

// returnView extends the borrow to the caller without the annotation that
// would pass the contract along.
func returnView() []byte {
	v := View()
	return v
}

// appendView retains the aliasing slice header inside a kept container.
func (h *holder) appendView() {
	h.entries = append(h.entries, View())
}

// sendView hands the alias to another goroutine.
func sendView(ch chan []byte) {
	select {
	case ch <- View():
	default:
	}
}

// deferView uses the view after the current statement, when the buffer may
// already be overwritten.
func deferView(use func([]byte)) {
	v := View()
	defer use(v)
}

// captureView stores a closure over the view for a later run.
func captureView(run func(func())) {
	v := View()
	run(func() { _ = v[0] })
}

// fill is a borrowing entry point: it must decode data without keeping it.
//
//ttdiag:noretain params
func (h *holder) fill(data []byte) {
	h.buf = data
}

// copyOut is the sanctioned idiom: a scalar spread copies the bytes, and the
// derived local view never leaves the call. No findings.
func (h *holder) copyOut() int {
	v := View()
	h.buf = append(h.buf[:0], v...)
	tail := v[4:]
	return len(tail)
}

// forward passes the contract along: annotating the wrapper makes returning
// the borrow legal. No findings.
//
//ttdiag:noretain
func forward() []byte {
	return View()
}

// Rows returns a scratch table of per-node views.
//
//ttdiag:noretain
func Rows() [][]byte { return [][]byte{scratch} }

// storeViaLocalMulti leaks through a multi-value local binding — the := form
// defines its idents, which have no Types entry (lhsRefTyped regression).
func storeViaLocalMulti() {
	v, ok := Pair()
	if ok {
		retained = v
	}
}

// storeViaRange leaks an element picked out of a ranged borrowed table —
// range bindings are definitions too (lhsRefTyped regression).
func (h *holder) storeViaRange() {
	for _, e := range Rows() {
		h.buf = e
	}
}
