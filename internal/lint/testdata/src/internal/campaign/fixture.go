// Package campaign is a lint fixture for the worker-pool package: a bare
// dispatch send (the exact bug the channel-discipline rule exists to catch
// in a cancellable pool) next to the compliant select form. It is never
// built by the real module (testdata).
package campaign

// Dispatch hands a run index to the pool outside a select — with every
// worker gone after an error, this send blocks forever.
func Dispatch(jobs chan int, run int) {
	jobs <- run
}

// DispatchCancellable is the compliant form: the send races a quit case.
func DispatchCancellable(jobs chan int, quit chan struct{}, run int) {
	select {
	case jobs <- run:
	case <-quit:
	}
}
