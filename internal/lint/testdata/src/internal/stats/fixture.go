// Package stats mirrors internal/stats in the fixture tree: since the
// estimator layer joined the deterministic set, clock reads and map-order
// leaks there must be findings.
package stats

import "time"

// Summary is a rendered artefact map-iteration order would leak into.
type Summary struct {
	PerNode map[int]float64
}

// Render iterates the map unsorted — nondeterministic output order.
func (s Summary) Render() []float64 {
	var out []float64
	for _, v := range s.PerNode {
		out = append(out, v)
	}
	return out
}

// Stamp reads the host clock inside an estimator.
func Stamp() int64 {
	return time.Now().UnixNano()
}
