// Package core is a lint fixture: it deliberately violates the no-wallclock,
// no-global-rand and no-map-range-state rules, and demonstrates the
// //lint:ignore directive. It is never built by the real module (testdata).
package core

import (
	"math/rand"
	"sort"
	"time"
)

// Clock reads the host clock — forbidden in deterministic packages.
func Clock() time.Time {
	return time.Now()
}

// Jitter draws from the global rand source and sleeps on the host clock.
func Jitter() time.Duration {
	d := time.Duration(rand.Intn(10)) * time.Millisecond
	time.Sleep(d)
	return d
}

// Elapsed also depends on the host clock, through a function value.
var Elapsed = time.Since

// Sum leaks map-iteration order into its accumulation sequence.
func Sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SortedKeys is the sanctioned iteration pattern: collect, sort, then use.
// The collection loop itself is order-independent, which the directive
// records.
func SortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	//lint:ignore no-map-range-state key collection precedes the sort below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Banner shows a same-line suppression.
func Banner() {
	time.Sleep(0) //lint:ignore no-wallclock fixture demonstrates same-line suppression
}

// Unexplained shows that a directive without a reason suppresses nothing.
func Unexplained() {
	//lint:ignore no-wallclock
	time.Sleep(0)
}

// Durations shows that time.Duration arithmetic stays legal; only clock
// reads are banned.
const slotLen = 250 * time.Microsecond

// Seeded shows that owning a seeded generator is legal; only the global
// source is banned.
func Seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}
