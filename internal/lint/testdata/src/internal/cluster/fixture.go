// Package cluster is a lint fixture for the channel-discipline rule: bare
// sends, mutex-by-value copies, the compliant select form and a suppressed
// finding. It is never built by the real module (testdata).
package cluster

import "sync"

type mailbox struct {
	mu    sync.Mutex
	count int
}

// Post sends outside a select — a node goroutine blocked here can deadlock
// against a coordinator that stopped listening.
func Post(ch chan int, v int) {
	ch <- v
}

// PostShutdown is the compliant form: the send is one case of a select with
// a quit case.
func PostShutdown(ch chan int, quit chan struct{}, v int) {
	select {
	case ch <- v:
	case <-quit:
	}
}

// Copy takes a mutex-bearing struct by value, duplicating its lock state.
func Copy(mb mailbox) int {
	return mb.count
}

// Use takes a pointer — the compliant form.
func Use(mb *mailbox) int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.count
}

// Blast keeps a bare send with a recorded justification.
func Blast(ch chan int) {
	//lint:ignore channel-discipline fixture send; the channel is buffered by contract
	ch <- 1
}
