package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkNoRetain enforces the owned-buffer contract introduced by the
// allocation-free refactors: functions documented as returning scratch views
// (tdma.Controller.ReadAll, sim.Engine.Truth, ...) hand out slices that are
// overwritten in place on the next round, and hot-path entry points
// (core.Protocol.Step, ...) receive buffers the caller immediately reuses.
// Aliasing either past the call silently breaks the consistent-diagnosis
// property the equivalence tests pin, typically long after the aliasing
// change landed. The contract is declared with a directive on the function's
// doc comment:
//
//	//ttdiag:noretain
//
// which marks the function's reference-typed results as borrowed views
// (callers must not retain them) and its reference-typed parameters as
// borrowed inputs (the body must not retain them). "Reference-typed" covers
// slices, maps, pointers, channels and structs carrying any of those.
//
// The rule is an intra-procedural alias analysis: within each function body
// it computes the set of borrowed values — annotated parameters, results of
// calls to annotated functions, and everything reachable from them through
// assignment, slicing, indexing, field selection, struct copy and
// append-to-borrowed — then flags the operations that let a borrowed value
// outlive the call:
//
//   - storing it into a struct field or a package-level variable (directly
//     or via an element of one);
//   - appending it to a slice held in a struct field or package-level
//     variable (unless the spread copies scalar elements);
//   - returning it from a function not itself annotated //ttdiag:noretain
//     (annotating the wrapper propagates the contract to its callers);
//   - sending it on a channel;
//   - capturing it in a closure that may run after the call (go / defer /
//     stored function values; an immediately invoked literal is fine).
//
// Copying the bytes out (copy, append with a scalar spread) is always legal
// and is the sanctioned way to retain data. The analysis does not track
// borrowed values through composite literals or through locally owned
// containers; those are caught by the escape gate's allowlist instead.
func checkNoRetain(p *pass) {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &retainChecker{
				pass:     p,
				fn:       fd,
				scope:    p.noretain(p.info.Defs[fd.Name]),
				borrowed: make(map[*types.Var]string),
			}
			c.seedParams()
			c.propagate()
			c.findSinks()
		}
	}
}

// retainChecker analyzes one function body.
type retainChecker struct {
	pass *pass
	fn   *ast.FuncDecl
	// scope is fn's own //ttdiag:noretain contract: scope.params seeds its
	// parameters as borrowed, scope.results legalises returning borrows.
	scope noretainScope
	// borrowed maps each borrowed variable to a description of where the
	// borrow came from, for diagnostics.
	borrowed map[*types.Var]string
}

// objectOf resolves an identifier to its object (definition or use).
func (c *retainChecker) objectOf(id *ast.Ident) types.Object {
	if obj := c.pass.info.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.info.Defs[id]
}

// isRef reports whether values of type t alias underlying storage when
// copied: slices, maps, pointers, channels, and structs or arrays carrying
// any of those (a struct copy copies the alias-bearing headers along).
func isRef(t types.Type) bool {
	return isRefSeen(t, make(map[types.Type]bool))
}

func isRefSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if isRefSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return isRefSeen(u.Elem(), seen)
	}
	return false
}

// seedParams marks the reference-typed parameters of an annotated function
// as borrowed.
func (c *retainChecker) seedParams() {
	if !c.scope.params || c.fn.Type.Params == nil {
		return
	}
	for _, field := range c.fn.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := c.pass.info.Defs[name].(*types.Var); ok && isRef(v.Type()) {
				c.borrowed[v] = "noretain parameter " + name.Name
			}
		}
	}
}

// calleeNoRetain resolves a call's target and reports whether its results
// are declared borrowed, returning the callee name for diagnostics.
func (c *retainChecker) calleeNoRetain(call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	if c.pass.noretain(c.objectOf(id)).results {
		return id.Name, true
	}
	return "", false
}

// borrowedExpr reports whether e evaluates to a borrowed value, with a
// description of the borrow's origin. Indexing, slicing and field selection
// preserve the borrow when the result still aliases (reference-typed);
// calls to annotated functions originate one; append to a borrowed slice
// may return an alias of it.
func (c *retainChecker) borrowedExpr(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := c.objectOf(x).(*types.Var); ok {
			if desc, ok := c.borrowed[v]; ok {
				return desc, true
			}
		}
	case *ast.SelectorExpr:
		if desc, ok := c.borrowedExpr(x.X); ok && c.refTyped(e) {
			return desc, true
		}
	case *ast.IndexExpr:
		if desc, ok := c.borrowedExpr(x.X); ok && c.refTyped(e) {
			return desc, true
		}
	case *ast.SliceExpr:
		if desc, ok := c.borrowedExpr(x.X); ok {
			return desc, true
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return c.borrowedExpr(x.X)
		}
	case *ast.CallExpr:
		if name, ok := c.calleeNoRetain(x); ok && c.refTyped(e) {
			return "scratch view from " + name, true
		}
		if c.isAppend(x) && len(x.Args) > 0 {
			return c.borrowedExpr(x.Args[0])
		}
	}
	return "", false
}

// refTyped reports whether the expression's type aliases storage.
func (c *retainChecker) refTyped(e ast.Expr) bool {
	tv, ok := c.pass.info.Types[e]
	return ok && isRef(tv.Type)
}

// lhsRefTyped is refTyped for assignment targets: the idents a := or range
// statement defines are not evaluated expressions and have no Types entry,
// so the declared object's type answers for them.
func (c *retainChecker) lhsRefTyped(e ast.Expr) bool {
	if tv, ok := c.pass.info.Types[e]; ok {
		return isRef(tv.Type)
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := c.objectOf(x).(*types.Var); ok {
			return isRef(v.Type())
		}
	case *ast.SelectorExpr:
		if v, ok := c.objectOf(x.Sel).(*types.Var); ok {
			return isRef(v.Type())
		}
	}
	return false
}

// isAppend recognises the append builtin.
func (c *retainChecker) isAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, builtin := c.objectOf(id).(*types.Builtin)
	return builtin && id.Name == "append"
}

// packageLevel reports whether v is a package-level variable.
func packageLevel(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// retainTarget classifies an lvalue (or container expression) that would
// make a store visible past the call: a struct field, a package-level
// variable, or an element of either.
func (c *retainChecker) retainTarget(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := c.objectOf(x).(*types.Var); ok && packageLevel(v) {
			return "package-level variable " + x.Name, true
		}
	case *ast.SelectorExpr:
		if v, ok := c.objectOf(x.Sel).(*types.Var); ok {
			if v.IsField() {
				return "struct field " + x.Sel.Name, true
			}
			if packageLevel(v) {
				return "package-level variable " + x.Sel.Name, true
			}
		}
	case *ast.IndexExpr:
		if desc, ok := c.retainTarget(x.X); ok {
			return "element of " + desc, true
		}
	case *ast.StarExpr:
		return c.retainTarget(x.X)
	}
	return "", false
}

// propagate grows the borrowed set to a fixpoint across the body's
// assignments, declarations and range statements.
func (c *retainChecker) propagate() {
	for changed := true; changed; {
		changed = false
		mark := func(id *ast.Ident, desc string) {
			v, ok := c.pass.info.Defs[id].(*types.Var)
			if !ok {
				if v, ok = c.objectOf(id).(*types.Var); !ok {
					return
				}
			}
			if packageLevel(v) || v.IsField() {
				return // stores there are sinks, not propagation
			}
			if _, seen := c.borrowed[v]; !seen {
				c.borrowed[v] = desc
				changed = true
			}
		}
		ast.Inspect(c.fn.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
					// Multi-value call: x, y := provider().
					if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
						if name, ok := c.calleeNoRetain(call); ok {
							for _, lhs := range st.Lhs {
								if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && c.lhsRefTyped(lhs) {
									mark(id, "scratch view from "+name)
								}
							}
						}
					}
					return true
				}
				for i, lhs := range st.Lhs {
					if i >= len(st.Rhs) {
						break
					}
					if desc, ok := c.borrowedExpr(st.Rhs[i]); ok {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							mark(id, desc)
						}
					}
				}
			case *ast.ValueSpec:
				if len(st.Values) == 1 && len(st.Names) > 1 {
					if call, ok := ast.Unparen(st.Values[0]).(*ast.CallExpr); ok {
						if name, ok := c.calleeNoRetain(call); ok {
							for _, id := range st.Names {
								if v, ok := c.pass.info.Defs[id].(*types.Var); ok && isRef(v.Type()) {
									mark(id, "scratch view from "+name)
								}
							}
						}
					}
					return true
				}
				for i, id := range st.Names {
					if i >= len(st.Values) {
						break
					}
					if desc, ok := c.borrowedExpr(st.Values[i]); ok {
						mark(id, desc)
					}
				}
			case *ast.RangeStmt:
				if desc, ok := c.borrowedExpr(st.X); ok {
					for _, e := range []ast.Expr{st.Key, st.Value} {
						if id, ok := e.(*ast.Ident); ok && c.lhsRefTyped(e) {
							mark(id, desc)
						}
					}
				}
			}
			return true
		})
	}
}

// findSinks walks the body reporting every operation that lets a borrowed
// value outlive the call.
func (c *retainChecker) findSinks() {
	c.sinkWalk(c.fn.Body)
}

// sinkWalk recurses through the body; closure handling needs per-child
// control (an immediately invoked literal is legal, a stored or deferred
// one is a capture), hence the manual traversal instead of ast.Inspect.
func (c *retainChecker) sinkWalk(n ast.Node) {
	if n == nil {
		return
	}
	switch st := n.(type) {
	case *ast.AssignStmt:
		c.checkAssign(st)
	case *ast.ReturnStmt:
		if !c.scope.results {
			for _, r := range st.Results {
				if desc, ok := c.borrowedExpr(r); ok {
					c.pass.report(r.Pos(), "no-retain",
						"returning %s extends the borrow past the call; copy it, or annotate the enclosing function //ttdiag:noretain to pass the contract to its callers", desc)
				}
			}
		}
	case *ast.SendStmt:
		if desc, ok := c.borrowedExpr(st.Value); ok {
			c.pass.report(st.Value.Pos(), "no-retain",
				"sending %s on a channel hands the alias to another goroutine; send a copy", desc)
		}
	case *ast.CallExpr:
		c.checkAppend(st)
		// An immediately invoked literal runs before the borrow expires, so
		// its body is walked like inline code (go/defer never reach this
		// branch: their cases below intercept the call).
		if lit, ok := ast.Unparen(st.Fun).(*ast.FuncLit); ok {
			for _, arg := range st.Args {
				c.sinkWalk(arg)
			}
			c.sinkWalk(lit.Body)
			return
		}
	case *ast.GoStmt:
		c.checkDeferredCall(st.Call)
		return
	case *ast.DeferStmt:
		c.checkDeferredCall(st.Call)
		return
	case *ast.FuncLit:
		c.checkCapture(st)
		c.sinkWalk(st.Body)
		return
	}
	for _, child := range childNodes(n) {
		c.sinkWalk(child)
	}
}

// checkDeferredCall handles go/defer: even an immediately invoked literal
// runs after the current statement, so captures are checked, and borrowed
// arguments passed to the deferred call are flagged too — by the time the
// call runs, the buffer may have been overwritten.
func (c *retainChecker) checkDeferredCall(call *ast.CallExpr) {
	for _, arg := range call.Args {
		if desc, ok := c.borrowedExpr(arg); ok {
			c.pass.report(arg.Pos(), "no-retain",
				"passing %s to a deferred call delays the use past the borrow; copy it first", desc)
		}
		c.sinkWalk(arg)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.checkCapture(lit)
		c.sinkWalk(lit.Body)
	} else {
		c.sinkWalk(call.Fun)
	}
}

// checkAssign flags stores of borrowed values into retention targets.
func (c *retainChecker) checkAssign(st *ast.AssignStmt) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			if name, ok := c.calleeNoRetain(call); ok {
				for _, lhs := range st.Lhs {
					if target, ok := c.retainTarget(lhs); ok && c.refTyped(lhs) {
						c.pass.report(lhs.Pos(), "no-retain",
							"storing scratch view from %s into %s retains a borrowed buffer; copy it instead", name, target)
					}
				}
			}
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		desc, ok := c.borrowedExpr(st.Rhs[i])
		if !ok {
			continue
		}
		if target, ok := c.retainTarget(lhs); ok {
			c.pass.report(st.Rhs[i].Pos(), "no-retain",
				"storing %s into %s retains a borrowed buffer; copy it instead", desc, target)
		}
	}
}

// checkAppend flags appends of borrowed values into retained slices. A
// spread of scalar elements (append(dst, view...) on a []byte) copies the
// data and is the sanctioned retention idiom; a spread of reference-typed
// elements copies the aliasing headers and is still a leak.
func (c *retainChecker) checkAppend(call *ast.CallExpr) {
	if !c.isAppend(call) || len(call.Args) < 2 {
		return
	}
	target, retained := c.retainTarget(call.Args[0])
	if !retained {
		return
	}
	spread := call.Ellipsis.IsValid()
	for _, arg := range call.Args[1:] {
		desc, ok := c.borrowedExpr(arg)
		if !ok {
			continue
		}
		if spread {
			if tv, ok := c.pass.info.Types[arg]; ok {
				if sl, ok := tv.Type.Underlying().(*types.Slice); ok && !isRef(sl.Elem()) {
					continue // copies scalar elements: legal
				}
			}
		}
		c.pass.report(arg.Pos(), "no-retain",
			"appending %s to %s retains a borrowed buffer; append a copy", desc, target)
	}
}

// checkCapture flags borrowed variables captured by a closure that may run
// after the borrow expires.
func (c *retainChecker) checkCapture(lit *ast.FuncLit) {
	reported := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.objectOf(id).(*types.Var)
		if !ok || reported[v] {
			return true
		}
		desc, borrowed := c.borrowed[v]
		if !borrowed {
			return true
		}
		// Captured only if declared outside the literal.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		reported[v] = true
		c.pass.report(id.Pos(), "no-retain",
			"closure captures %s and may run after the buffer is overwritten; copy it before capturing", desc)
		return true
	})
}

// childNodes returns n's direct children, the traversal primitive of
// sinkWalk (ast.Inspect cannot stop recursion per child).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			out = append(out, m)
		}
		return false
	})
	return out
}
