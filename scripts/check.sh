#!/usr/bin/env bash
# check.sh is the repository's full correctness gate: formatting, go vet,
# build, tests, the race detector on the concurrent packages, the
# ttdiag_invariants-enabled test run, the static-analysis suite
# (cmd/ttdiag-lint) and the escape-analysis allocation gate. CI runs exactly
# these steps; run it locally before sending a PR. Each step reports its
# wall-clock duration, and a summary table prints at the end. See
# docs/STATIC_ANALYSIS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

timings=()

# step <title> <command...> runs one gate step, timing it.
step() {
    local title=$1
    shift
    echo "== $title =="
    local start=$SECONDS
    "$@"
    local elapsed=$((SECONDS - start))
    timings+=("$(printf '%4ds  %s' "$elapsed" "$title")")
}

check_gofmt() {
    local unformatted
    unformatted=$(gofmt -l .)
    if [ -n "$unformatted" ]; then
        echo "gofmt needed on:" >&2
        echo "$unformatted" >&2
        exit 1
    fi
}

check_metrics_determinism() {
    go test -race -cpu=1,4 ./internal/experiments/ -run TestMetricsWorkerCountInvariance
    go test -race -cpu=1,4 ./internal/cluster/ -run TestClusterMetricsMatchLockStep
}

check_fleet_determinism() {
    go test -race -cpu=1,4 ./internal/fleet/ \
        -run 'TestFleetWorkerCountInvariance|TestFleetShardOrderInvariance|TestFleetMonolithicEquivalence|TestFleetCausalWorkerInvariance'
    go test -race -cpu=1,4 ./internal/experiments/ -run TestFleetCampaignWorkerCountInvariance
}

check_checkpoint_determinism() {
    go test -race -cpu=1,4 ./internal/core/ -run 'TestCopyFromMatchesJSONRestore|TestCopyFromContinuation'
    go test -race -cpu=1,4 ./internal/sim/ -run 'TestClusterCheckpointRewind|TestClusterCheckpointCrossCluster'
    go test -race -cpu=1,4 ./internal/splitting/ -run 'TestRunWorkerCountInvariance|TestRunMatchesDirectMonteCarlo'
    go test -race -cpu=1,4 ./internal/experiments/ -run TestRareEventCampaignWorkerCountInvariance
}

step "gofmt" check_gofmt
step "go vet" go vet ./...
step "go build" go build ./...
step "go test" go test ./...
step "go test -race (concurrent packages)" \
    go test -race ./internal/cluster/... ./internal/sim/... ./internal/campaign/... ./internal/fleet/... ./internal/splitting/... ./internal/trace/...
step "go test -race -cpu=1,4 (campaign determinism)" \
    go test -race -cpu=1,4 ./internal/experiments/ -run TestCampaignWorkerCountInvariance
step "go test -race -cpu=1,4 (metrics determinism)" check_metrics_determinism
step "go test -race -cpu=1,4 (cluster reuse equivalence)" \
    go test -race -cpu=1,4 ./internal/sim/ -run TestClusterReuseEquivalence
step "go test -race -cpu=1,4 (packed/scalar step equivalence)" \
    go test -race -cpu=1,4 ./internal/core/ -run 'TestPackedScalarStepEquivalence|TestPackedScalarTraceEquivalence'
step "go test -race -cpu=1,4 (batched campaign determinism)" \
    go test -race -cpu=1,4 ./internal/experiments/ -run 'TestBatchedWorkerCountInvariance|TestBatchedCampaignEquivalence|TestScaleResilienceBatchedEquivalence|TestBatchedTraceEquivalence'
step "go test -race -cpu=1,4 (fleet determinism)" check_fleet_determinism
step "go test -race -cpu=1,4 (checkpoint + splitting determinism)" check_checkpoint_determinism
step "go test (allocation ceilings)" \
    go test ./internal/core/ ./internal/tdma/ ./internal/sim/ ./internal/fleet/ -run 'Allocs'
step "go test -fuzz (packed voting kernel, seed corpus + short fuzz)" \
    go test ./internal/core/ -run FuzzVoteAll -fuzz 'FuzzVoteAll$' -fuzztime 15s
step "go test -fuzz (lane-packed voting kernel, seed corpus + short fuzz)" \
    go test ./internal/core/ -run FuzzVoteAllBatch -fuzz 'FuzzVoteAllBatch$' -fuzztime 15s
step "go test -tags ttdiag_invariants" \
    go test -tags ttdiag_invariants ./internal/core/... ./internal/invariant/... ./internal/cluster/... ./internal/sim/...
step "ttdiag-lint (+ escape gate)" \
    go run ./cmd/ttdiag-lint -escapes ./...

echo
echo "== step timings =="
for t in "${timings[@]}"; do
    echo "$t"
done
echo "All checks passed."
