#!/usr/bin/env bash
# check.sh is the repository's full correctness gate: formatting, go vet,
# build, tests, the race detector on the concurrent packages, the
# ttdiag_invariants-enabled test run, and the determinism analyzer
# (cmd/ttdiag-lint). CI runs exactly these steps; run it locally before
# sending a PR. See docs/STATIC_ANALYSIS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/cluster/... ./internal/sim/... ./internal/campaign/...

echo "== go test -race -cpu=1,4 (campaign determinism) =="
go test -race -cpu=1,4 ./internal/experiments/ -run TestCampaignWorkerCountInvariance

echo "== go test -race -cpu=1,4 (metrics determinism) =="
go test -race -cpu=1,4 ./internal/experiments/ -run TestMetricsWorkerCountInvariance
go test -race -cpu=1,4 ./internal/cluster/ -run TestClusterMetricsMatchLockStep

echo "== go test -race -cpu=1,4 (cluster reuse equivalence) =="
go test -race -cpu=1,4 ./internal/sim/ -run TestClusterReuseEquivalence

echo "== go test -race -cpu=1,4 (packed/scalar step equivalence) =="
go test -race -cpu=1,4 ./internal/core/ -run TestPackedScalarStepEquivalence

echo "== go test (allocation ceilings) =="
go test ./internal/core/ ./internal/sim/ -run 'Allocs'

echo "== go test -fuzz (packed voting kernel, seed corpus + short fuzz) =="
go test ./internal/core/ -run FuzzVoteAll -fuzz FuzzVoteAll -fuzztime 30s

echo "== go test -tags ttdiag_invariants =="
go test -tags ttdiag_invariants ./internal/core/... ./internal/invariant/... ./internal/cluster/... ./internal/sim/...

echo "== ttdiag-lint =="
go run ./cmd/ttdiag-lint ./...

echo "All checks passed."
