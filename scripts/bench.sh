#!/usr/bin/env bash
# bench.sh runs the campaign engine and protocol hot-path benchmarks and
# records every sample in BENCH_campaign.json, plus the packed voting-kernel
# microbenchmarks in BENCH_core.json, the telemetry-layer benchmarks
# (instrument costs, Step with metrics on/off and Step with the causal
# flight recorder on/off) in BENCH_metrics.json,
# the hierarchical fleet campaign (sharded vs scalar monolithic at equal
# node-rounds) in BENCH_fleet.json and the rare-event splitting estimation
# (checkpoint-restore hot loop) in BENCH_splitting.json, so the bench
# trajectory of the repository can be tracked across commits. Usage:
#
#   scripts/bench.sh                 # 5 samples per benchmark (default)
#   COUNT=1 scripts/bench.sh         # quick single-sample run
#
# See docs/PERFORMANCE.md for the reference numbers and how to read them.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# fold_json converts `go test -bench` output on stdin into a JSON sample list
# (no external tools: the container only guarantees the go toolchain and a
# POSIX userland).
fold_json() {
    awk '
BEGIN { print "["; sep = "" }
/^Benchmark/ {
    name = $1; iters = $2; ns = "null"; bytes = "null"; allocs = "null"
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "B/op") bytes = $(i - 1)
        else if ($i == "allocs/op") allocs = $(i - 1)
    }
    printf "%s  {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", \
        sep, name, iters, ns, bytes, allocs
    sep = ",\n"
}
END { print "\n]" }
'
}

go test -run '^$' \
    -bench 'BenchmarkSec8BurstCampaign|BenchmarkProtocolStep|BenchmarkEngineRound' \
    -benchmem -count="$COUNT" . | tee "$raw"
fold_json < "$raw" > BENCH_campaign.json
echo "wrote BENCH_campaign.json"

go test -run '^$' \
    -bench 'BenchmarkVoteAll|BenchmarkVoteAllScalar|BenchmarkMatrixSetRow|BenchmarkStepBatch|BenchmarkScalarStep|BenchmarkCheckpointRestore' \
    -benchmem -count="$COUNT" ./internal/core/ | tee "$raw"
fold_json < "$raw" > BENCH_core.json
echo "wrote BENCH_core.json"

# Both packages feed one stream so fold_json emits a single JSON list.
# BenchmarkStepTrace pairs with BenchmarkStepMetrics: Step with a causal
# flight recorder attached vs the nil-sink baseline.
go test -run '^$' \
    -bench 'BenchmarkStepMetrics|BenchmarkMetrics|BenchmarkStepTrace' \
    -benchmem -count="$COUNT" ./internal/core/ ./internal/metrics/ | tee "$raw"
fold_json < "$raw" > BENCH_metrics.json
echo "wrote BENCH_metrics.json"

# The scalar monolithic baseline runs seconds per iteration; one iteration
# per sample keeps the suite tractable while the sharded side still gets a
# meaningful multi-iteration average from the same -benchtime.
go test -run '^$' \
    -bench 'BenchmarkFleetCampaign' -benchtime 2x \
    -benchmem -count="$COUNT" ./internal/fleet/ | tee "$raw"
fold_json < "$raw" > BENCH_fleet.json
echo "wrote BENCH_fleet.json"

go test -run '^$' \
    -bench 'BenchmarkSplittingCampaign' \
    -benchmem -count="$COUNT" ./internal/splitting/ | tee "$raw"
fold_json < "$raw" > BENCH_splitting.json
echo "wrote BENCH_splitting.json"
