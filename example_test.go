package ttdiag_test

import (
	"fmt"

	"ttdiag"
)

// Example runs the doc-comment quick start: a four-node cluster, one benign
// fault, one agreed health vector.
func Example() {
	eng, runners, err := ttdiag.NewSimulation(ttdiag.SimulationConfig{})
	if err != nil {
		panic(err)
	}
	eng.Bus().AddDisturbance(ttdiag.SlotBurstTrain(eng.Schedule(), 6, 3, 1))
	runners[1].OnOutput = func(out ttdiag.RoundOutput) {
		if out.DiagnosedRound == 6 {
			fmt.Printf("agreed health of round 6: %s\n", out.ConsHV)
		}
	}
	if err := eng.RunRounds(12); err != nil {
		panic(err)
	}
	// Output:
	// agreed health of round 6: 1101
}

// ExampleHMaj shows the hybrid majority vote of Eqn. 1: erased votes are
// excluded, ties acquit.
func ExampleHMaj() {
	verdict, ok := ttdiag.HMaj([]ttdiag.Opinion{ttdiag.Faulty, ttdiag.Faulty, ttdiag.Healthy})
	fmt.Println(verdict, ok)
	verdict, ok = ttdiag.HMaj([]ttdiag.Opinion{ttdiag.Faulty, ttdiag.Healthy, ttdiag.Erased})
	fmt.Println(verdict, ok)
	_, ok = ttdiag.HMaj([]ttdiag.Opinion{ttdiag.Erased, ttdiag.Erased})
	fmt.Println(ok)
	// Output:
	// 0 true
	// 1 true
	// false
}

// ExampleDeriveTuning reruns the Sec. 9 tuning procedure for the automotive
// domain and prints the Table 2 values.
func ExampleDeriveTuning() {
	res, err := ttdiag.DeriveTuning(ttdiag.Automotive())
	if err != nil {
		panic(err)
	}
	fmt.Printf("P=%d R=%d\n", res.P, res.R)
	for _, ct := range res.PerClass {
		fmt.Printf("%s: s=%d\n", ct.Class.Name, ct.Criticality)
	}
	// Output:
	// P=197 R=1000000
	// SC: s=40
	// SR: s=6
	// NSR: s=1
}

// ExampleNewRecoveryPlan derives degraded modes from activity vectors: the
// consistency of the diagnosis makes the switch safe without extra
// agreement.
func ExampleNewRecoveryPlan() {
	plan, err := ttdiag.NewRecoveryPlan(4, []ttdiag.RecoveryJob{
		{Name: "steer", Criticality: 40, Hosts: []int{1, 3}},
		{Name: "doors", Criticality: 1, Hosts: []int{4}, Degradable: true},
	})
	if err != nil {
		panic(err)
	}
	m := ttdiag.NewRecoveryManager(plan)
	if _, err := m.Observe([]bool{false, true, true, true, true}); err != nil {
		panic(err)
	}
	fmt.Println(m.Describe())
	if _, err := m.Observe([]bool{false, false, true, true, false}); err != nil {
		panic(err)
	}
	fmt.Println(m.Describe())
	// Output:
	// doors->n4 steer->n1
	// doors->shed steer->n3
}

// ExampleNewMembership runs the Sec. 7 membership variant against a benign
// sender fault: the faulty node is excluded from the agreed view.
func ExampleNewMembership() {
	eng, runners, err := ttdiag.NewMembershipSimulation(ttdiag.SimulationConfig{
		Ls: ttdiag.Staircase(4), AllSendCurrRound: true,
	})
	if err != nil {
		panic(err)
	}
	eng.Bus().AddDisturbance(ttdiag.SlotBurstTrain(eng.Schedule(), 8, 3, 1))
	if err := eng.RunRounds(16); err != nil {
		panic(err)
	}
	v := runners[1].View()
	fmt.Printf("view %d: members %v\n", v.ID, v.Members)
	// Output:
	// view 1: members [1 2 4]
}
