module ttdiag

go 1.22
