package ttdiag_test

import (
	"bytes"
	"testing"

	"ttdiag"
)

// TestFacadeQuickstart exercises the doc-comment quick-start path end to end
// through the public API only.
func TestFacadeQuickstart(t *testing.T) {
	eng, runners, err := ttdiag.NewSimulation(ttdiag.SimulationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Bus().AddDisturbance(ttdiag.SlotBurstTrain(eng.Schedule(), 6, 3, 1))
	if err := eng.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	found := false
	for id := 1; id <= 4; id++ {
		last := runners[id].Last()
		if last.ConsHV == nil {
			t.Fatalf("node %d has no health vector", id)
		}
	}
	// Rewind through a collector-less check: re-run with a collector.
	eng2, runners2, err := ttdiag.NewSimulation(ttdiag.SimulationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	col := ttdiag.NewCollector()
	for id := 1; id <= 4; id++ {
		col.HookDiag(id, runners2[id])
	}
	eng2.Bus().AddDisturbance(ttdiag.SlotBurstTrain(eng2.Schedule(), 6, 3, 1))
	if err := eng2.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	if err := ttdiag.AuditTheorem1(eng2, col, []int{1, 2, 3, 4}, 3, 9); err != nil {
		t.Fatal(err)
	}
	if hv := col.ConsHV[6][1]; hv.String() == "1101" {
		found = true
	}
	if !found {
		t.Fatalf("faulty round 6 diagnosed as %v, want 1101", col.ConsHV[6][1])
	}
}

func TestFacadeProtocolConstruction(t *testing.T) {
	p, err := ttdiag.NewProtocol(ttdiag.Config{
		N: 4, ID: 1, L: 0, SendCurrRound: true,
		PR: ttdiag.PRConfig{PenaltyThreshold: 10, RewardThreshold: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Config().N != 4 {
		t.Fatal("config lost")
	}
	if _, err := ttdiag.NewMembership(ttdiag.Config{
		N: 4, ID: 2, L: 1, SendCurrRound: true,
		PR: ttdiag.PRConfig{PenaltyThreshold: 10, RewardThreshold: 10},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ttdiag.NewLowLatNode(ttdiag.LowLatConfig{
		N: 4, ID: 3,
		PR: ttdiag.PRConfig{PenaltyThreshold: 10, RewardThreshold: 10},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeVoting(t *testing.T) {
	v, ok := ttdiag.HMaj([]ttdiag.Opinion{ttdiag.Faulty, ttdiag.Faulty, ttdiag.Healthy})
	if !ok || v != ttdiag.Faulty {
		t.Fatalf("HMaj = %v,%v", v, ok)
	}
	s := ttdiag.NewSyndrome(4, ttdiag.Healthy)
	dec, err := ttdiag.DecodeSyndrome(s.Encode(), 4)
	if err != nil || !dec.Equal(s) {
		t.Fatalf("round trip failed: %v %v", dec, err)
	}
}

func TestFacadeTuning(t *testing.T) {
	res, err := ttdiag.DeriveTuning(ttdiag.Automotive())
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 197 {
		t.Fatalf("P = %d", res.P)
	}
	if _, err := ttdiag.DeriveTuning(ttdiag.Aerospace()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeConcurrentCluster(t *testing.T) {
	cl, err := ttdiag.NewConcurrentCluster(ttdiag.SimulationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.RunRounds(5); err != nil {
		t.Fatal(err)
	}
	if cl.Last(1).ConsHV == nil {
		t.Fatal("no health vector from concurrent cluster")
	}
}

func TestFacadeScenarios(t *testing.T) {
	if got := ttdiag.BlinkingLight().TotalBursts(); got != 50 {
		t.Fatalf("blinking light bursts = %d", got)
	}
	if got := ttdiag.LightningBolt().TotalBursts(); got != 11 {
		t.Fatalf("lightning bursts = %d", got)
	}
	if got := ttdiag.Staircase(4); len(got) != 4 || got[3] != 3 {
		t.Fatalf("staircase = %v", got)
	}
}

func TestFacadePlatforms(t *testing.T) {
	ps := ttdiag.Platforms()
	if len(ps) != 4 {
		t.Fatalf("platforms = %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		eng, _, err := ttdiag.NewSimulation(p.ClusterConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunRounds(4); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeDynamicAndNoise(t *testing.T) {
	sides := []bool{true, true, true, true}
	eng, runners, err := ttdiag.NewDynamicSimulation(ttdiag.SimulationConfig{}, sides,
		func(id, round int) int { return (round + id) % id })
	if err != nil {
		t.Fatal(err)
	}
	eng.Bus().AddDisturbance(ttdiag.NewRandomNoise(0.1, 3))
	if err := eng.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	for id := 2; id <= 4; id++ {
		if !runners[id].Last().ConsHV.Equal(runners[1].Last().ConsHV) {
			t.Fatal("dynamic+noise cluster disagreed")
		}
	}
}

func TestFacadeCrash(t *testing.T) {
	eng, runners, err := ttdiag.NewSimulation(ttdiag.SimulationConfig{
		PR: ttdiag.PRConfig{PenaltyThreshold: 3, RewardThreshold: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Bus().AddDisturbance(ttdiag.Crash(2, 5))
	if err := eng.RunRounds(20); err != nil {
		t.Fatal(err)
	}
	if runners[1].Last().Active[2] {
		t.Fatal("crashed node still active")
	}
}

func TestFacadeConcurrentVariants(t *testing.T) {
	cm, mrs, err := ttdiag.NewConcurrentMembership(ttdiag.SimulationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()
	if err := cm.RunRounds(6); err != nil {
		t.Fatal(err)
	}
	if got := mrs[1].View().ID; got != 0 {
		t.Fatalf("clean membership run changed views: %d", got)
	}

	cl, lrs, err := ttdiag.NewConcurrentLowLat(ttdiag.SimulationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.RunRounds(6); err != nil {
		t.Fatal(err)
	}
	if lrs[1].Node().Config().N != 4 {
		t.Fatal("lowlat runner misconfigured")
	}
}

func TestFacadeLowLatSimulation(t *testing.T) {
	eng, runners, err := ttdiag.NewLowLatSimulation(ttdiag.SimulationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	runners[1].OnVerdict = func(v ttdiag.Verdict) { got++ }
	if err := eng.RunRounds(6); err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Fatal("no verdicts from low-latency simulation")
	}
}

func TestFacadeMembershipSimulation(t *testing.T) {
	eng, runners, err := ttdiag.NewMembershipSimulation(ttdiag.SimulationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var last ttdiag.MembershipOutput
	runners[2].OnOutput = func(out ttdiag.MembershipOutput) { last = out }
	if err := eng.RunRounds(8); err != nil {
		t.Fatal(err)
	}
	if last.View.ID != 0 || len(last.View.Members) != 4 {
		t.Fatalf("membership output %+v", last.View)
	}
}

func TestFacadePenaltyRewardAndTrains(t *testing.T) {
	pr, err := ttdiag.NewPenaltyReward(4, ttdiag.PRConfig{PenaltyThreshold: 1, RewardThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	hv := ttdiag.NewSyndrome(4, ttdiag.Healthy)
	hv[2] = ttdiag.Faulty
	if _, _, err := pr.Update(hv); err != nil {
		t.Fatal(err)
	}
	tr := ttdiag.NewTrain(ttdiag.Burst{Start: 0, Length: 10})
	if len(tr.Bursts()) != 1 {
		t.Fatal("train lost its burst")
	}
}

func TestFacadeCheckpoint(t *testing.T) {
	p, err := ttdiag.NewProtocol(ttdiag.Config{
		N: 4, ID: 1, L: 0, SendCurrRound: true,
		PR: ttdiag.PRConfig{PenaltyThreshold: 5, RewardThreshold: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ttdiag.RestoreProtocol(data); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRecovery(t *testing.T) {
	plan, err := ttdiag.NewRecoveryPlan(4, []ttdiag.RecoveryJob{
		{Name: "steer", Criticality: 40, Hosts: []int{1, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := ttdiag.NewRecoveryManager(plan)
	if _, err := m.Observe([]bool{false, true, true, true, true}); err != nil {
		t.Fatal(err)
	}
	if m.HostOf("steer") != 1 {
		t.Fatalf("steer host = %d", m.HostOf("steer"))
	}
}

func TestFacadeFlightRecorder(t *testing.T) {
	cfg := ttdiag.SimulationConfig{PR: ttdiag.PRConfig{PenaltyThreshold: 3, RewardThreshold: 10}}
	eng, _, err := ttdiag.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	flush := ttdiag.RecordTranscript(eng, ttdiag.NewTranscriptWriter(&buf))
	eng.Bus().AddDisturbance(ttdiag.Crash(2, 5))
	if err := eng.RunRounds(20); err != nil {
		t.Fatal(err)
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	logf, err := ttdiag.ReadTranscript(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := ttdiag.ReplayTranscript(logf, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	isolated := false
	for _, d := range diags {
		for _, n := range d.Isolated {
			if n == 2 {
				isolated = true
			}
		}
	}
	if !isolated {
		t.Fatal("replay did not reconstruct the isolation")
	}
}
