// Package ttdiag is a tunable add-on diagnostic and membership protocol for
// time-triggered (TT) systems, reproducing "A Tunable Add-On Diagnostic
// Protocol for Time-Triggered Systems" (Serafini et al., DSN 2007).
//
// The protocol runs as an application-level middleware module on every node
// of a TDMA cluster. Each node broadcasts, once per round, an N-bit local
// syndrome describing which messages it received correctly; the syndromes
// are aggregated into a diagnostic matrix and combined with a hybrid
// majority vote into a consistent health vector that is agreed by every
// obedient node even under multiple coincident benign faults, one
// asymmetric fault and malicious syndrome sources (Theorem 1). A
// penalty/reward algorithm accumulates the agreed diagnoses, weighting
// faults by the criticality of the applications hosted on each node, so
// that external transient faults do not cost availability while internal
// intermittent faults still lead to timely isolation.
//
// The package is the public facade over the implementation packages:
//
//   - the protocol itself (Protocol, PenaltyReward, HMaj) — internal/core
//   - the membership variant with clique detection — internal/membership
//   - the low-latency system-level variant — internal/lowlat
//   - the TDMA substrate (schedule, bus, controllers) — internal/tdma
//   - fault injection (bursts, scenarios, malicious senders) — internal/fault
//   - the lock-step simulation engine and audits — internal/sim
//   - the goroutine-per-node concurrent runtime — internal/cluster
//   - penalty/reward tuning procedures — internal/tuning
//   - baselines (TTP/C membership, α-count) — internal/baseline
//
// # Quick start
//
//	eng, runners, err := ttdiag.NewSimulation(ttdiag.SimulationConfig{})
//	if err != nil { ... }
//	eng.Bus().AddDisturbance(ttdiag.SlotBurstTrain(eng.Schedule(), 6, 3, 1))
//	if err := eng.RunRounds(12); err != nil { ... }
//	fmt.Println(runners[1].Last().ConsHV) // agreed health of round 6: 1101
//
// See examples/ for runnable walkthroughs and cmd/ttdiag-experiments for the
// full reproduction of the paper's tables and figures.
package ttdiag

import (
	"io"

	"ttdiag/internal/cluster"
	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/lowlat"
	"ttdiag/internal/membership"
	"ttdiag/internal/metrics"
	"ttdiag/internal/platform"
	"ttdiag/internal/recovery"
	"ttdiag/internal/replay"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
	"ttdiag/internal/trace"
	"ttdiag/internal/tuning"
)

// Core protocol types.
type (
	// Opinion is a node's view on another node's health (Faulty, Healthy,
	// or the ε value Erased inside diagnostic matrices).
	Opinion = core.Opinion
	// Syndrome is a 1-based vector of opinions, one per node.
	Syndrome = core.Syndrome
	// Matrix is a diagnostic matrix for one diagnosed round.
	Matrix = core.Matrix
	// Config parameterises one node's diagnostic job.
	Config = core.Config
	// PRConfig tunes the penalty/reward algorithm (thresholds P and R,
	// per-node criticality levels s_i).
	PRConfig = core.PRConfig
	// PenaltyReward is the per-node Alg. 2 state.
	PenaltyReward = core.PenaltyReward
	// Protocol is the per-node diagnostic job state machine (Alg. 1).
	Protocol = core.Protocol
	// RoundInput feeds one round of controller observations to a Protocol.
	RoundInput = core.RoundInput
	// PackedRoundInput feeds one round of already bit-packed observations to
	// a packed-representation Protocol (N <= MaxPackedN).
	PackedRoundInput = core.PackedRoundInput
	// RoundOutput is the result of one diagnostic-job execution.
	RoundOutput = core.RoundOutput
	// BitSyndrome is a syndrome packed into two 64-bit planes (opinions and
	// presence); the value representation of the word-parallel voting kernel.
	BitSyndrome = core.BitSyndrome
	// Mode selects the diagnostic or membership protocol variant.
	Mode = core.Mode
)

// Opinion values and protocol modes.
const (
	Faulty  = core.Faulty
	Healthy = core.Healthy
	Erased  = core.Erased

	ModeDiagnostic = core.ModeDiagnostic
	ModeMembership = core.ModeMembership

	// MaxPackedN is the widest system the bit-packed representation covers;
	// beyond it the protocol transparently falls back to the scalar
	// reference implementation.
	MaxPackedN = core.MaxPackedN
)

// NewProtocol builds the diagnostic job for one node.
func NewProtocol(cfg Config) (*Protocol, error) { return core.NewProtocol(cfg) }

// NewPenaltyReward builds a stand-alone penalty/reward filter.
func NewPenaltyReward(n int, cfg PRConfig) (*PenaltyReward, error) {
	return core.NewPenaltyReward(n, cfg)
}

// HMaj is the hybrid majority voting function of Eqn. 1.
func HMaj(votes []Opinion) (Opinion, bool) { return core.HMaj(votes) }

// DecodeSyndrome unpacks a wire-format N-bit syndrome.
func DecodeSyndrome(data []byte, n int) (Syndrome, error) { return core.DecodeSyndrome(data, n) }

// NewSyndrome returns a syndrome for n nodes filled with the given opinion.
func NewSyndrome(n int, fill Opinion) Syndrome { return core.NewSyndrome(n, fill) }

// PackSyndrome packs a scalar syndrome into its two-plane bit representation
// (len(s)-1 <= MaxPackedN nodes).
func PackSyndrome(s Syndrome) (BitSyndrome, error) { return core.PackSyndrome(s) }

// PlaneMask returns the presence mask covering nodes 1..n, i.e. the low n
// bits set.
func PlaneMask(n int) uint64 { return core.PlaneMask(n) }

// Membership service (Sec. 7).
type (
	// MembershipService is the group membership service: the modified
	// diagnostic protocol plus view management.
	MembershipService = membership.Service
	// View is one membership view.
	View = membership.View
	// MembershipOutput is the result of one membership round.
	MembershipOutput = membership.Output
)

// NewMembership builds the membership service for one node.
func NewMembership(cfg Config) (*MembershipService, error) { return membership.New(cfg) }

// Low-latency system-level variant (Sec. 10).
type (
	// LowLatConfig parameterises a node of the constrained-scheduling
	// variant (one-round diagnosis, two-round membership).
	LowLatConfig = lowlat.Config
	// LowLatNode is the per-slot analysis state machine.
	LowLatNode = lowlat.Node
	// Verdict is one agreed per-slot diagnosis.
	Verdict = lowlat.Verdict
)

// NewLowLatNode builds a node of the low-latency variant.
func NewLowLatNode(cfg LowLatConfig) (*LowLatNode, error) { return lowlat.NewNode(cfg) }

// TDMA substrate.
type (
	// NodeID identifies a node (1-based, in sending-slot order).
	NodeID = tdma.NodeID
	// Schedule is the global communication schedule.
	Schedule = tdma.Schedule
	// Controller is a node's communication controller.
	Controller = tdma.Controller
	// Bus is the shared broadcast medium of the lock-step engine.
	Bus = tdma.Bus
	// Disturbance perturbs bus deliveries (fault injection).
	Disturbance = tdma.Disturbance
	// Transmission describes one slot broadcast.
	Transmission = tdma.Transmission
	// Delivery is what one receiver observes for one transmission.
	Delivery = tdma.Delivery
)

// Fault injection.
type (
	// Burst is a contiguous interval of bus-wide interference.
	Burst = fault.Burst
	// Train is a set of bursts implementing Disturbance.
	Train = fault.Train
	// Scenario is a named abnormal transient scenario (Table 3).
	Scenario = fault.Scenario
)

// NewTrain builds a burst train disturbance.
func NewTrain(bursts ...Burst) *Train { return fault.NewTrain(bursts...) }

// SlotBurstTrain is a convenience: a train with one burst covering `slots`
// consecutive sending slots from (round, slot).
func SlotBurstTrain(sched *Schedule, round, slot, slots int) *Train {
	return fault.NewTrain(fault.SlotBurst(sched, round, slot, slots))
}

// BlinkingLight returns the automotive abnormal transient scenario.
func BlinkingLight() Scenario { return fault.BlinkingLight() }

// LightningBolt returns the aerospace abnormal transient scenario.
func LightningBolt() Scenario { return fault.LightningBolt() }

// Simulation runtimes.
type (
	// SimulationConfig describes a homogeneous protocol cluster (defaults:
	// the paper's 4-node, 2.5 ms prototype).
	SimulationConfig = sim.ClusterConfig
	// Engine is the deterministic lock-step round executor.
	Engine = sim.Engine
	// DiagRunner adapts a Protocol to the engine.
	DiagRunner = sim.DiagRunner
	// MembershipRunner adapts a MembershipService to the engine.
	MembershipRunner = sim.MembershipRunner
	// LowLatRunner adapts a LowLatNode to the engine.
	LowLatRunner = sim.LowLatRunner
	// Collector gathers per-round outputs for audits and metrics.
	Collector = sim.Collector
	// ConcurrentCluster is the goroutine-per-node runtime.
	ConcurrentCluster = cluster.Cluster
	// Recorder retains trace events in memory.
	Recorder = trace.Recorder
)

// NewSimulation wires a lock-step engine with one diagnostic protocol
// instance per node.
func NewSimulation(cfg SimulationConfig) (*Engine, []*DiagRunner, error) {
	return sim.NewDiagnosticCluster(cfg)
}

// NewMembershipSimulation wires a lock-step engine with one membership
// service per node.
func NewMembershipSimulation(cfg SimulationConfig) (*Engine, []*MembershipRunner, error) {
	return sim.NewMembershipCluster(cfg)
}

// NewLowLatSimulation wires a lock-step engine with the constrained
// low-latency variant on every node.
func NewLowLatSimulation(cfg SimulationConfig) (*Engine, []*LowLatRunner, error) {
	return sim.NewLowLatCluster(cfg)
}

// NewConcurrentCluster starts the goroutine-per-node runtime; Close it when
// done.
func NewConcurrentCluster(cfg SimulationConfig) (*ConcurrentCluster, error) {
	return cluster.New(cfg)
}

// NewCollector returns an empty output collector.
func NewCollector() *Collector { return sim.NewCollector() }

// AuditTheorem1 checks correctness, completeness and consistency of the
// collected health vectors against the engine's ground truth.
func AuditTheorem1(eng *Engine, col *Collector, obedient []int, fromRound, toRound int) error {
	return sim.AuditTheorem1(eng, col, obedient, fromRound, toRound)
}

// Staircase returns the node schedule in which every diagnostic job runs
// right before its own sending slot (all send_curr_round).
func Staircase(n int) []int { return sim.Staircase(n) }

// Tuning (Sec. 9).
type (
	// DomainSpec describes an application domain of Table 2.
	DomainSpec = tuning.DomainSpec
	// TuningResult is the derived Table 2 outcome (P, s_i, R).
	TuningResult = tuning.Result
)

// Automotive returns the automotive domain specification of Table 2.
func Automotive() DomainSpec { return tuning.Automotive() }

// Aerospace returns the aerospace domain specification of Table 2.
func Aerospace() DomainSpec { return tuning.Aerospace() }

// DeriveTuning reruns the Sec. 9 tuning procedure for a domain.
func DeriveTuning(spec DomainSpec) (TuningResult, error) { return tuning.Derive(spec) }

// Platform profiles (Sec. 10 portability).
type (
	// Platform is a representative TT platform deployment profile.
	Platform = platform.Profile
)

// Platforms returns the representative FlexRay, TTP/C, SAFEbus and
// TT-Ethernet profiles; the protocol runs unchanged on all of them.
func Platforms() []Platform { return platform.All() }

// NewDynamicSimulation wires a lock-step engine under dynamic node
// scheduling (Sec. 10): position(id, round) is the OS-provided per-round job
// position, sides[id-1] declares on which side of its own sending slot each
// node's job stays (true = before the slot / send_curr_round). The
// middleware pins each node's interface read point to round start, which is
// what keeps the wandering execution times sound.
func NewDynamicSimulation(cfg SimulationConfig, sides []bool, position func(id, round int) int) (*Engine, []*DiagRunner, error) {
	return sim.NewDynamicDiagnosticCluster(cfg, sides, position)
}

// NewRandomNoise returns a disturbance that corrupts every transmission
// independently with the given probability (the "random noise" injection
// class of Sec. 8), using a deterministic stream derived from seed.
func NewRandomNoise(prob float64, seed int64) Disturbance {
	return fault.NewRandomNoise(prob, rng.NewSource(seed).Stream("noise"))
}

// NewConcurrentMembership starts a goroutine-per-node membership cluster.
func NewConcurrentMembership(cfg SimulationConfig) (*ConcurrentCluster, []*MembershipRunner, error) {
	return cluster.NewMembershipCluster(cfg)
}

// NewConcurrentLowLat starts a goroutine-per-node cluster of the constrained
// low-latency variant.
func NewConcurrentLowLat(cfg SimulationConfig) (*ConcurrentCluster, []*LowLatRunner, error) {
	return cluster.NewLowLatCluster(cfg)
}

// Crash returns a disturbance that makes a node fail-silent from the given
// round on: a permanently benign faulty sender (an unhealthy node in the
// extended fault model).
func Crash(node NodeID, fromRound int) Disturbance { return fault.Crash(node, fromRound) }

// RestoreProtocol rebuilds a Protocol from a (*Protocol).Snapshot
// checkpoint: a node restarted by its host OS resumes its diagnostic job
// with the same alignment buffers and penalty/reward counters.
func RestoreProtocol(data []byte) (*Protocol, error) { return core.RestoreProtocol(data) }

// Recovery / reconfiguration (the R in FDIR).
type (
	// RecoveryJob is an application function with criticality and host
	// preference list.
	RecoveryJob = recovery.Job
	// RecoveryPlan is the static reconfiguration table.
	RecoveryPlan = recovery.Plan
	// RecoveryManager switches operating modes as activity vectors arrive.
	RecoveryManager = recovery.Manager
	// RecoveryMode is one derived operating mode.
	RecoveryMode = recovery.Mode
)

// NewRecoveryPlan validates a job table for an n-node system.
func NewRecoveryPlan(n int, jobs []RecoveryJob) (*RecoveryPlan, error) {
	return recovery.NewPlan(n, jobs)
}

// NewRecoveryManager builds a per-node mode manager over a plan.
func NewRecoveryManager(plan *RecoveryPlan) *RecoveryManager { return recovery.NewManager(plan) }

// Flight recorder (bus transcripts + offline replay).
type (
	// TranscriptWriter streams slot records as JSON lines.
	TranscriptWriter = replay.Writer
	// Transcript is a parsed bus transcript.
	Transcript = replay.Log
	// RoundDiagnosis is one reconstructed per-round outcome.
	RoundDiagnosis = replay.RoundDiagnosis
)

// NewTranscriptWriter wraps an io.Writer; attach the result to
// Engine.OnReport via RecordTranscript.
func NewTranscriptWriter(w io.Writer) *TranscriptWriter { return replay.NewWriter(w) }

// RecordTranscript attaches a transcript writer to an engine; every slot
// transmission is streamed as one JSON line. Write errors are reported
// through the returned error func (call it after the run).
func RecordTranscript(eng *Engine, w *TranscriptWriter) (flushErr func() error) {
	var firstErr error
	eng.OnReport = func(rep *tdma.TxReport) {
		if err := w.RecordReport(rep); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return func() error { return firstErr }
}

// ReadTranscript parses a JSONL bus transcript for an n-node system.
func ReadTranscript(r io.Reader, n int) (*Transcript, error) { return replay.Read(r, n) }

// ReplayTranscript re-runs the diagnostic protocol of one observer offline
// against a transcript; pass a different PR configuration for
// counterfactual analysis.
func ReplayTranscript(log *Transcript, cfg SimulationConfig, observer int) ([]RoundDiagnosis, error) {
	return replay.Replay(log, cfg, observer)
}

// Deterministic telemetry (see docs/OBSERVABILITY.md).
type (
	// MetricsRegistry owns a single goroutine's counters, gauges, histograms
	// and series; nil is the zero-cost metrics-off mode.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time, deterministically marshaling copy
	// of a registry's instruments.
	MetricsSnapshot = metrics.Snapshot
	// MetricsReport is the versioned machine-readable run report the CLIs'
	// -metrics flag emits.
	MetricsReport = metrics.Report
	// MetricsWorkerSet merges per-worker registries into worker-count-
	// invariant aggregates.
	MetricsWorkerSet = metrics.WorkerSet
	// StepMetrics is the per-node protocol instrument bundle a Protocol
	// emits into on every Step.
	StepMetrics = core.StepMetrics
	// RunMetrics is the per-run system instrument bundle (ground-truth
	// outcomes, isolation latency, view changes).
	RunMetrics = sim.RunMetrics
	// CampaignProgress is the opt-in wall-clock progress reporter; its
	// observations never enter deterministic outputs.
	CampaignProgress = metrics.Progress
)

// NewMetricsRegistry returns an empty single-goroutine metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// NewStepMetrics wires the standard protocol instruments to the registry;
// attach the result with (*Protocol).SetMetrics.
func NewStepMetrics(reg *MetricsRegistry) *StepMetrics { return core.NewStepMetrics(reg) }

// NewRunMetrics wires the standard system instruments to the registry.
func NewRunMetrics(reg *MetricsRegistry) *RunMetrics { return sim.NewRunMetrics(reg) }

// NewMetricsReport returns an empty versioned run report.
func NewMetricsReport(tool string, seed int64, runs int) *MetricsReport {
	return metrics.NewReport(tool, seed, runs)
}
