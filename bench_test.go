// Benchmarks: one per paper table/figure (regenerating the artifact inside
// the timing loop) plus microbenchmarks of the protocol's hot paths. Run
// with: go test -bench=. -benchmem
package ttdiag_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/experiments"
	"ttdiag/internal/fault"
	"ttdiag/internal/recovery"
	"ttdiag/internal/replay"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
	"ttdiag/internal/tuning"

	"ttdiag"
)

// --- Per-artifact benchmarks ------------------------------------------------

func benchExperiment(b *testing.B, id string, runs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, experiments.Params{Seed: 1, Runs: runs, Out: io.Discard}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1DiagnosticMatrix(b *testing.B) { benchExperiment(b, "table1", 1) }

func BenchmarkTable2Tuning(b *testing.B) { benchExperiment(b, "table2", 1) }

func BenchmarkFig3RewardTradeoff(b *testing.B) { benchExperiment(b, "fig3", 1) }

// BenchmarkTable4AdverseScenarios measures the aerospace row (the automotive
// NSR class simulates 25 s of bus time per repetition and is exercised by
// the experiments binary instead).
func BenchmarkTable4AdverseScenarios(b *testing.B) {
	res, err := tuning.Derive(tuning.Aerospace())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := tuning.TimeToIncorrectIsolation(fault.LightningBolt(), res, 1, 1, int64(i), true)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].IsolatedRuns != 1 {
			b.Fatal("no isolation")
		}
	}
}

// BenchmarkSec8BurstCampaign runs the full 12-class, 100-repetition burst
// campaign at several worker counts. The rendered output is bit-identical
// across the sub-benchmarks; only the wall clock changes (on multi-core
// hosts — with GOMAXPROCS=1 the pool degenerates to the serial path plus
// channel overhead).
func BenchmarkSec8BurstCampaign(b *testing.B) {
	for _, workers := range []int{1, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := experiments.Run("sec8-bursts", experiments.Params{
					Seed: 1, Runs: 100, Workers: workers, Out: io.Discard,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSec8BurstCampaignBatched is the same 12-class, 100-repetition
// campaign on the lane-packed batched path (Params.Batched): gangs of 16
// repetitions share each protocol step and each bus delivery. The rendered
// output is bit-identical to BenchmarkSec8BurstCampaign; the ns/op ratio
// between the two at workers=1 is the tentpole's speedup figure (tracked in
// BENCH_campaign.json, discussed in docs/PERFORMANCE.md).
func BenchmarkSec8BurstCampaignBatched(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := experiments.Run("sec8-bursts", experiments.Params{
					Seed: 1, Runs: 100, Workers: workers, Out: io.Discard, Batched: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSec8MaliciousCampaign(b *testing.B) { benchExperiment(b, "sec8-malicious", 1) }

func BenchmarkSec8CliqueCampaign(b *testing.B) { benchExperiment(b, "sec8-clique", 1) }

func BenchmarkSec10LowLatency(b *testing.B) { benchExperiment(b, "sec10-lowlat", 1) }

func BenchmarkBaselineTTPC(b *testing.B) { benchExperiment(b, "cmp-ttpc", 1) }

func BenchmarkBaselineComparison(b *testing.B) {
	res, err := tuning.Derive(tuning.Aerospace())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuning.ComparePolicies(fault.LightningBolt(), res, 0.95, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks of the protocol hot paths ------------------------------

func BenchmarkHMaj(b *testing.B) {
	for _, n := range []int{4, 8, 16, 64} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			st := rng.NewStream(1)
			votes := make([]core.Opinion, n-1)
			for i := range votes {
				votes[i] = core.Opinion(st.Intn(3))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.HMaj(votes)
			}
		})
	}
}

func BenchmarkSyndromeCodec(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			s := core.NewSyndrome(n, core.Healthy)
			s[2] = core.Faulty
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc := s.Encode()
				if _, err := core.DecodeSyndrome(enc, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPenaltyRewardUpdate(b *testing.B) {
	pr, err := core.NewPenaltyReward(4, core.PRConfig{PenaltyThreshold: 1 << 40, RewardThreshold: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	hv := core.NewSyndrome(4, core.Healthy)
	hv[2] = core.Faulty
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pr.Update(hv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolStep measures one diagnostic-job execution (Alg. 1, all
// five phases) for growing cluster sizes.
func BenchmarkProtocolStep(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			p, err := core.NewProtocol(core.Config{
				N: n, ID: 1, L: 0, SendCurrRound: true, AllSendCurrRound: true,
				PR: core.PRConfig{PenaltyThreshold: 1 << 40, RewardThreshold: 1 << 40},
			})
			if err != nil {
				b.Fatal(err)
			}
			dms := make([]core.Syndrome, n+1)
			for j := 1; j <= n; j++ {
				dms[j] = core.NewSyndrome(n, core.Healthy)
			}
			validity := core.NewSyndrome(n, core.Healthy)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Step(core.RoundInput{Round: i, DMs: dms, Validity: validity}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineRound measures a full simulated TDMA round of the lock-step
// engine (N transmissions + N diagnostic jobs).
func BenchmarkEngineRound(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			eng, _, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
				N: n, RoundLen: sim.DefaultRoundLen * time.Duration(n) / 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.RunRound(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(eng.Schedule().N()), "slots/round")
		})
	}
}

// BenchmarkConcurrentClusterRound measures the goroutine-per-node runtime's
// round, including all channel synchronisation.
func BenchmarkConcurrentClusterRound(b *testing.B) {
	cl, err := ttdiag.NewConcurrentCluster(ttdiag.SimulationConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLowLatRound measures the constrained system-level variant's round
// (per-slot analysis on every node).
func BenchmarkLowLatRound(b *testing.B) {
	eng, _, err := sim.NewLowLatCluster(sim.ClusterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMembershipRound measures the membership variant's round.
func BenchmarkMembershipRound(b *testing.B) {
	eng, _, err := sim.NewMembershipCluster(sim.ClusterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension-artifact benchmarks -------------------------------------------

func BenchmarkPortabilityAcrossPlatforms(b *testing.B) { benchExperiment(b, "port-platforms", 1) }

func BenchmarkScaleResilience(b *testing.B) { benchExperiment(b, "scale-resilience", 1) }

func BenchmarkVotingAblation(b *testing.B) { benchExperiment(b, "ablate-vote", 1) }

func BenchmarkThresholdSweep(b *testing.B) { benchExperiment(b, "sweep-threshold", 1) }

func BenchmarkHealthyIsolation(b *testing.B) { benchExperiment(b, "healthy-isolation", 1) }

func BenchmarkTable3Scenarios(b *testing.B) { benchExperiment(b, "table3", 1) }

func BenchmarkFig1PhaseInterleaving(b *testing.B) { benchExperiment(b, "fig1", 1) }

func BenchmarkFig2ReadAlignment(b *testing.B) { benchExperiment(b, "fig2", 1) }

func BenchmarkFDIRLoop(b *testing.B) { benchExperiment(b, "fdir-loop", 1) }

func BenchmarkReintegrationExtension(b *testing.B) { benchExperiment(b, "ext-reintegration", 1) }

// BenchmarkFlightRecorder measures transcript writing plus offline replay of
// a 30-round scenario.
func BenchmarkFlightRecorder(b *testing.B) {
	cfg := sim.ClusterConfig{Ls: []int{2, 0, 3, 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, _, err := sim.NewDiagnosticCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		w := replay.NewWriter(&buf)
		eng.OnReport = func(rep *tdma.TxReport) {
			if err := w.RecordReport(rep); err != nil {
				b.Fatal(err)
			}
		}
		eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), 6, 3, 1)))
		if err := eng.RunRounds(30); err != nil {
			b.Fatal(err)
		}
		log, err := replay.Read(&buf, 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := replay.Replay(log, cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryModeDerivation measures the reconfiguration-table lookup.
func BenchmarkRecoveryModeDerivation(b *testing.B) {
	plan, err := recovery.NewPlan(8, []recovery.Job{
		{Name: "a", Criticality: 40, Hosts: []int{1, 3, 5}},
		{Name: "b", Criticality: 6, Hosts: []int{2, 4}},
		{Name: "c", Criticality: 1, Hosts: []int{6}, Degradable: true},
		{Name: "d", Criticality: 1, Hosts: []int{7, 8}, Degradable: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	active := make([]bool, 9)
	for i := range active {
		active[i] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		active[1+i%8] = !active[1+i%8]
		if _, err := plan.ModeFor(active); err != nil {
			b.Fatal(err)
		}
	}
}
