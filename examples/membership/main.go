// Membership: clique detection with the Sec. 7 protocol variant. A
// disturbance sits between node 1 and the rest of the cluster, so node 1
// misses node 2's broadcast while everyone else receives it — an asymmetric
// fault that splits the receivers into a majority clique {2,3,4} and a
// minority clique {1}.
//
// The plain diagnostic protocol agrees that node 2 was healthy (majority
// vote) and cannot see the clique; the membership variant additionally
// notices that node 1's disseminated syndrome disagrees with the agreed
// verdict, raises a minority accusation, and installs the new view {2,3,4}
// at every obedient node in the same round — within two protocol executions
// (Theorem 2).
package main

import (
	"fmt"
	"log"

	"ttdiag"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eng, runners, err := ttdiag.NewMembershipSimulation(ttdiag.SimulationConfig{})
	if err != nil {
		return err
	}

	// The asymmetric fault: only node 1 fails to receive node 2's message
	// in round 8.
	const faultRound = 8
	eng.Bus().AddDisturbance(receiverBlind{faultRound: faultRound})

	for id := 1; id <= 4; id++ {
		id := id
		runners[id].OnOutput = func(out ttdiag.MembershipOutput) {
			for _, acc := range out.Diag.Accused {
				fmt.Printf("round %2d: node %d raises a minority accusation against node %d\n",
					out.Diag.Round, id, acc)
			}
			if out.ViewChanged {
				fmt.Printf("round %2d: node %d installs view %d: members %v\n",
					out.Diag.Round, id, out.View.ID, out.View.Members)
			}
		}
	}

	if err := eng.RunRounds(20); err != nil {
		return err
	}

	fmt.Println()
	for id := 1; id <= 4; id++ {
		v := runners[id].View()
		fmt.Printf("node %d final view: id=%d members=%v (formed at round %d)\n",
			id, v.ID, v.Members, v.FormedAtRound)
	}
	fmt.Println("\nall obedient nodes hold the same view: the minority clique {1} was")
	fmt.Println("detected and excluded, preserving view synchrony.")
	return nil
}

// receiverBlind makes node 1 miss node 2's broadcast in one round. It is a
// tiny custom ttdiag.Disturbance, showing how applications can model their
// own fault hypotheses against the public API.
type receiverBlind struct {
	faultRound int
}

func (rb receiverBlind) Deliver(tx *ttdiag.Transmission, rcv ttdiag.NodeID, d ttdiag.Delivery) ttdiag.Delivery {
	if tx.Round == rb.faultRound && tx.Sender == 2 && rcv == 1 {
		return ttdiag.Delivery{}
	}
	return d
}

func (rb receiverBlind) SenderCollision(_ *ttdiag.Transmission, collided bool) bool {
	return collided
}
