// Middleware integration: how an application consumes the diagnostic
// protocol's activity vector. A steer-by-wire function runs replicated on
// nodes 1 (primary) and 3 (backup); the actuator on node 4 follows the
// primary while the agreed activity vector says it is alive and fails over
// to the backup the moment the protocol isolates the primary — in the same
// round on every node, because isolation decisions are consistent.
//
// This is the paper's deployment story: the protocol is an add-on job next
// to the application jobs, and `active` is its only interface to them.
package main

import (
	"fmt"
	"log"

	"ttdiag"
)

const (
	primary = 1
	backup  = 3
)

// steering is the application-side replica selector of the actuator node.
type steering struct {
	source    int
	failovers int
}

// observe reacts to the diagnostic protocol's activity vector.
func (s *steering) observe(round int, active []bool) {
	want := primary
	if !active[primary] {
		want = backup
	}
	if want != s.source {
		fmt.Printf("round %2d: actuator fails over from node %d to node %d\n", round, s.source, want)
		s.source = want
		s.failovers++
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eng, runners, err := ttdiag.NewSimulation(ttdiag.SimulationConfig{
		// Fast isolation for the demo: P=4 with unit criticalities.
		PR: ttdiag.PRConfig{PenaltyThreshold: 4, RewardThreshold: 100},
	})
	if err != nil {
		return err
	}

	// The primary's host develops an intermittent internal fault at round 8
	// and stops transmitting for good at round 14 (an unhealthy node in the
	// extended fault model).
	eng.Bus().AddDisturbance(ttdiag.SlotBurstTrain(eng.Schedule(), 8, primary, 1))
	eng.Bus().AddDisturbance(ttdiag.Crash(primary, 14))

	// The application module on the actuator node (4) watches the activity
	// vector produced by the local diagnostic job — the protocol's internal
	// output (Alg. 1 line 15).
	sel := &steering{source: primary}
	runners[4].OnOutput = func(out ttdiag.RoundOutput) {
		sel.observe(out.Round, out.Active)
	}

	if err := eng.RunRounds(30); err != nil {
		return err
	}

	fmt.Printf("\nfailovers: %d (the burst at round 8 was filtered by the p/r algorithm;\n", sel.failovers)
	fmt.Println("only the permanent fault from round 14 triggered isolation and failover)")

	// Every other node's application would have made the same decision in
	// the same round: the activity vectors are consistent.
	for id := 1; id <= 4; id++ {
		if id == primary {
			continue
		}
		if runners[id].Last().Active[primary] {
			return fmt.Errorf("node %d still considers the primary active", id)
		}
	}
	fmt.Println("all replicas agree on the failover decision (consistency of Alg. 1)")
	return nil
}
