// Automotive: a mixed-criticality X-by-wire cluster. Node 1 hosts a safety
// critical function (steer-by-wire), node 2 a safety relevant one (stability
// control), nodes 3 and 4 non-safety-relevant comfort functions. The
// penalty/reward algorithm is tuned exactly as in Sec. 9 / Table 2
// (P = 197, s = 40/6/1, R = 10^6), and the cluster is exposed to the
// "blinking light" abnormal transient scenario of Table 3: 50 bursts of
// 10 ms with a 500 ms time to reappearance.
//
// The run shows the availability trade-off of Table 4: the SC node is
// sacrificed after ~0.5 s of abnormal disturbance, the SR node after ~4 s,
// while the NSR nodes ride out almost the whole scenario — and with
// immediate isolation the entire vehicle network would have restarted after
// the very first burst.
package main

import (
	"fmt"
	"log"
	"time"

	"ttdiag"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Re-derive the Table 2 tuning from the tolerated-outage budgets.
	res, err := ttdiag.DeriveTuning(ttdiag.Automotive())
	if err != nil {
		return err
	}
	fmt.Printf("derived tuning: P=%d, R=%g\n", res.P, float64(res.R))
	for _, ct := range res.PerClass {
		fmt.Printf("  %-4s (%s): tolerated outage %-6v -> criticality s=%d\n",
			ct.Class.Name, ct.Class.Example, ct.Class.Outage, ct.Criticality)
	}

	eng, runners, err := ttdiag.NewSimulation(ttdiag.SimulationConfig{
		PR: res.PRConfig(4), // node 1 = SC, node 2 = SR, nodes 3,4 = NSR
	})
	if err != nil {
		return err
	}

	// The blinking light: periodic electrical instabilities on the bus.
	scenario := ttdiag.BlinkingLight()
	eng.Bus().AddDisturbance(scenario.Train(0))
	fmt.Printf("\ninjecting %q: %d bursts over %v\n\n",
		scenario.Name, scenario.TotalBursts(), scenario.Span())

	classOf := map[int]string{1: "SC", 2: "SR", 3: "NSR", 4: "NSR"}
	runners[1].OnOutput = func(out ttdiag.RoundOutput) {
		for _, iso := range out.Isolated {
			at := eng.Schedule().RoundStart(out.Round)
			fmt.Printf("t=%8v: node %d (%s) isolated by the p/r algorithm\n", at, iso, classOf[iso])
		}
	}

	// Simulate the full scenario plus one second of calm.
	rounds := int((scenario.Span() + time.Second) / eng.Schedule().RoundLen())
	if err := eng.RunRounds(rounds); err != nil {
		return err
	}

	fmt.Println("\nfinal penalty counters at node 2 (identical on every node):")
	pr := runners[2].Protocol().PenaltyReward()
	for id := 1; id <= 4; id++ {
		fmt.Printf("  node %d (%s): penalty=%d active=%v\n", id, classOf[id], pr.Penalty(id), pr.IsActive(id))
	}
	fmt.Println("\ncompare: with immediate isolation (P=0) every node would have been")
	fmt.Println("isolated within the first 10 ms burst, restarting the whole vehicle network.")
	return nil
}
