// Aerospace: a safety-critical backbone (High Lift and Landing Gear
// controllers) tuned per Table 2 (P = 17, s = 1, R = 10^6) and struck by
// the lightning-bolt scenario of Table 3: 40 ms disturbance bursts with
// increasing time to reappearance (160 ms, 290 ms, then nine at 500 ms).
//
// The example also demonstrates the reintegration extension suggested in the
// paper's Sec. 9: isolated nodes are kept under observation and return to
// service after a clean observation window, so the lightning strike costs
// availability only temporarily.
package main

import (
	"fmt"
	"log"
	"time"

	"ttdiag"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	res, err := ttdiag.DeriveTuning(ttdiag.Aerospace())
	if err != nil {
		return err
	}
	fmt.Printf("derived tuning: P=%d, s=%d, R=%g (50 ms tolerated outage at T=2.5 ms)\n",
		res.P, res.PerClass[0].Criticality, float64(res.R))

	prCfg := res.PRConfig(4)
	// Reintegration extension: after 400 consecutive clean rounds (1 s of
	// fault-free behaviour under observation) an isolated node rejoins.
	prCfg.ReintegrationThreshold = 400

	eng, runners, err := ttdiag.NewSimulation(ttdiag.SimulationConfig{PR: prCfg})
	if err != nil {
		return err
	}

	scenario := ttdiag.LightningBolt()
	eng.Bus().AddDisturbance(scenario.Train(0))
	fmt.Printf("\ninjecting %q: %d bursts over %v\n\n",
		scenario.Name, scenario.TotalBursts(), scenario.Span())

	runners[1].OnOutput = func(out ttdiag.RoundOutput) {
		at := eng.Schedule().RoundStart(out.Round)
		for _, iso := range out.Isolated {
			fmt.Printf("t=%8v: node %d isolated (paper Table 4: ~0.205 s for the first)\n", at, iso)
		}
		for _, re := range out.Reintegrated {
			fmt.Printf("t=%8v: node %d reintegrated after a clean observation window\n", at, re)
		}
	}

	rounds := int((scenario.Span() + 3*time.Second) / eng.Schedule().RoundLen())
	if err := eng.RunRounds(rounds); err != nil {
		return err
	}

	pr := runners[1].Protocol().PenaltyReward()
	active := 0
	for id := 1; id <= 4; id++ {
		if pr.IsActive(id) {
			active++
		}
	}
	fmt.Printf("\nafter the storm: %d/4 nodes active again\n", active)
	return nil
}
