// Flight recorder: record the bus transcript of a live run, then analyse it
// offline — including a counterfactual replay under different tuning. The
// diagnosis is a deterministic function of the bus observations, so the
// transcript is all a post-mortem needs.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ttdiag"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := ttdiag.SimulationConfig{
		PR: ttdiag.PRConfig{PenaltyThreshold: 5, RewardThreshold: 20},
	}

	// --- Live run: node 3 suffers a 7-round transient and is isolated. ---
	eng, _, err := ttdiag.NewSimulation(cfg)
	if err != nil {
		return err
	}
	var transcript bytes.Buffer
	flush := ttdiag.RecordTranscript(eng, ttdiag.NewTranscriptWriter(&transcript))
	// Corrupt node 3's sending slot for 7 consecutive rounds (an external
	// transient hitting only its stub).
	bursts := make([]ttdiag.Burst, 0, 7)
	for r := 6; r < 13; r++ {
		start, _ := eng.Schedule().SlotWindow(r, 3)
		bursts = append(bursts, ttdiag.Burst{Start: start, Length: eng.Schedule().SlotLen()})
	}
	eng.Bus().AddDisturbance(ttdiag.NewTrain(bursts...))
	if err := eng.RunRounds(30); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d bytes of bus transcript (30 rounds)\n\n", transcript.Len())

	// --- Post-mortem: reconstruct what node 1 decided. ---
	logf, err := ttdiag.ReadTranscript(bytes.NewReader(transcript.Bytes()), 4)
	if err != nil {
		return err
	}
	diags, err := ttdiag.ReplayTranscript(logf, cfg, 1)
	if err != nil {
		return err
	}
	for _, d := range diags {
		if len(d.Isolated) > 0 {
			fmt.Printf("deployed tuning (P=5): round %d isolated %v (health %s)\n",
				d.Round, d.Isolated, d.ConsHV)
		}
	}

	// --- Counterfactual: would P=50 have ridden the transient out? ---
	cfg.PR.PenaltyThreshold = 50
	diags, err = ttdiag.ReplayTranscript(logf, cfg, 1)
	if err != nil {
		return err
	}
	isolations := 0
	for _, d := range diags {
		isolations += len(d.Isolated)
	}
	fmt.Printf("counterfactual tuning (P=50): %d isolations — the transient would have been filtered\n", isolations)
	return nil
}
