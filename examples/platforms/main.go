// Platforms: the same add-on protocol code running unchanged on
// representative FlexRay, TTP/C, SAFEbus and TT-Ethernet deployments
// (Sec. 10 portability), including one cluster with dynamic node scheduling
// where the OS moves the diagnostic job to a different position every round.
// A 5% random-noise environment stresses each cluster while we watch the
// diagnosis stay consistent.
package main

import (
	"fmt"
	"log"

	"ttdiag"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, prof := range ttdiag.Platforms() {
		if err := runProfile(prof); err != nil {
			return fmt.Errorf("%s: %w", prof.Name, err)
		}
	}
	return runDynamic()
}

func runProfile(prof ttdiag.Platform) error {
	eng, runners, err := ttdiag.NewSimulation(prof.ClusterConfig())
	if err != nil {
		return err
	}
	eng.Bus().AddDisturbance(ttdiag.NewRandomNoise(0.05, 42))

	col := ttdiag.NewCollector()
	obedient := make([]int, prof.N)
	for id := 1; id <= prof.N; id++ {
		col.HookDiag(id, runners[id])
		obedient[id-1] = id
	}
	const rounds = 200
	if err := eng.RunRounds(rounds); err != nil {
		return err
	}
	// The audit cross-checks every agreed health vector against the bus's
	// ground truth; benign-only noise keeps diagnosis exact at any load.
	if err := ttdiag.AuditTheorem1(eng, col, obedient, 4, rounds-4); err != nil {
		return err
	}
	faulty := 0
	for d := 4; d < rounds-4; d++ {
		faulty += col.ConsHV[d][1].CountFaulty()
	}
	fmt.Printf("%-12s N=%-3d round=%-6v dm=%d byte(s): %d rounds, %d faulty slots diagnosed, audit clean\n",
		prof.Name, prof.N, prof.RoundLen, (prof.N+7)/8, rounds, faulty)
	return nil
}

func runDynamic() error {
	// Dynamic node scheduling: the OS moves each job every round; jobs of
	// nodes 1, 3, 4 stay before their slots, node 2's runs after its slot.
	sides := []bool{true, false, true, true}
	position := func(id, round int) int {
		if sides[id-1] {
			return (round * 7) % id // wanders in 0..id-1
		}
		return id + (round*5)%(4-id) // wanders in id..N-1
	}
	eng, runners, err := ttdiag.NewDynamicSimulation(ttdiag.SimulationConfig{}, sides, position)
	if err != nil {
		return err
	}
	eng.Bus().AddDisturbance(ttdiag.SlotBurstTrain(eng.Schedule(), 8, 3, 1))
	if err := eng.RunRounds(16); err != nil {
		return err
	}
	for id := 1; id <= 4; id++ {
		if !runners[id].Last().ConsHV.Equal(runners[1].Last().ConsHV) {
			return fmt.Errorf("dynamic cluster disagreed")
		}
	}
	fmt.Printf("%-12s N=4   dynamic scheduling: job positions wander every round, diagnosis stays agreed\n", "dynamic")
	return nil
}
