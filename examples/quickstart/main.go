// Quickstart: a four-node time-triggered cluster (the paper's prototype
// dimensions: N = 4, TDMA round 2.5 ms) runs the add-on diagnostic protocol.
// We corrupt node 3's sending slot in round 6 and watch every node agree on
// the consistent health vector 1101 for that round, a few rounds later.
package main

import (
	"fmt"
	"log"

	"ttdiag"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A homogeneous 4-node cluster with default parameters. Each node runs
	// one diagnostic job per round; the empty config means "never isolate"
	// thresholds, which is ideal for watching pure detection.
	eng, runners, err := ttdiag.NewSimulation(ttdiag.SimulationConfig{})
	if err != nil {
		return err
	}

	// The disturbance node: corrupt exactly one sending slot — node 3's
	// slot in round 6. All receivers will locally detect the fault (a
	// symmetric benign fault in the paper's fault model).
	eng.Bus().AddDisturbance(ttdiag.SlotBurstTrain(eng.Schedule(), 6, 3, 1))

	// Observe node 1's agreed health vectors as they are produced.
	runners[1].OnOutput = func(out ttdiag.RoundOutput) {
		if out.ConsHV == nil {
			return // protocol pipeline still warming up
		}
		marker := ""
		if out.ConsHV.CountFaulty() > 0 {
			marker = "   <- node 3's fault, diagnosed consistently"
		}
		fmt.Printf("round %2d: agreed health of round %2d = %s%s\n",
			out.Round, out.DiagnosedRound, out.ConsHV, marker)
	}

	if err := eng.RunRounds(12); err != nil {
		return err
	}

	// Every node reached the same conclusion (consistency property).
	fmt.Println()
	for id := 1; id <= 4; id++ {
		fmt.Printf("node %d penalty counter for node 3: %d\n",
			id, runners[id].Protocol().PenaltyReward().Penalty(3))
	}
	return nil
}
